#!/bin/sh
# Mode-composition cross-matrix: fig06 at {shards 0,2} x {fluid
# off,exact,on}, plus a shards=1 fluid=on cell for the cross-shard
# byte-identity leg. Pairs are checked per the established contracts
# (DESIGN.md section 14 and 15):
#
#   exact-vs-on at a fixed shard count  -> strict fluid-equiv (byte
#                                          identity on every
#                                          non-diagnostic leaf)
#   off-vs-on at a fixed shard count    -> banded fluid-equiv
#   fluid=on across shard counts        -> cmp (bit-for-bit)
#
# The legacy (shards=0) and sharded machines publish different metric
# sets (the sharded report drops legacy-only members), so there is no
# cross-machine pair contract; composition legality is exactly "every
# in-machine contract still holds when both flags are set".
set -eu

BENCH=$1
CHECK=$2
OUT=$3

rm -rf "$OUT"
mkdir -p "$OUT"

run() {
    "$BENCH" --shards="$1" --fluid="$2" --out="$OUT/s$1_$2" \
        > "$OUT/s$1_$2.log" 2>&1
}

# The off/exact cells simulate every hop; run the matrix concurrently
# so the test's wall time is one exact run, not six.
run 0 off & run 0 exact & run 0 on &
run 2 off & run 2 exact & run 2 on &
run 1 on &
wait

fail=0

echo "== strict: exact vs on shares one schedule at each shard count"
"$CHECK" fluid-equiv "$OUT/s0_exact/fig06.json" "$OUT/s0_on/fig06.json" \
    || fail=1
"$CHECK" fluid-equiv "$OUT/s2_exact/fig06.json" "$OUT/s2_on/fig06.json" \
    || fail=1

echo "== banded: off vs on stays inside the equivalence bands"
"$CHECK" fluid-equiv --banded "$OUT/s0_off/fig06.json" \
    "$OUT/s0_on/fig06.json" || fail=1
"$CHECK" fluid-equiv --banded "$OUT/s2_off/fig06.json" \
    "$OUT/s2_on/fig06.json" || fail=1

echo "== byte identity: fluid=on reports across shard counts"
if cmp "$OUT/s1_on/fig06.json" "$OUT/s2_on/fig06.json"; then
    echo "s1_on == s2_on"
else
    echo "FAIL: s1_on differs from s2_on" >&2
    fail=1
fi

exit $fail
