/**
 * @file
 * Unit tests for the observability layer: histogram bucket math,
 * metric registry, JSON writer/parser round-trips, Chrome trace
 * export, bench reports and the shared bench CLI contract.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_options.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/metric.hpp"
#include "obs/pathtrace.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "sim/cpu_server.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

using namespace sriov;
using namespace sriov::obs;

// ---------------------------------------------------------------- Histogram

TEST(Histogram, BucketBoundaries)
{
    Histogram h(Histogram::Params{1.0, 2.0, 4});
    ASSERT_EQ(h.bucketCount(), 4u);
    EXPECT_DOUBLE_EQ(h.bucketUpperBound(0), 1.0);
    EXPECT_DOUBLE_EQ(h.bucketUpperBound(1), 2.0);
    EXPECT_DOUBLE_EQ(h.bucketUpperBound(2), 4.0);
    EXPECT_TRUE(std::isinf(h.bucketUpperBound(3)));

    // Bounds are inclusive upper bounds; <= 0 lands in bucket 0.
    EXPECT_EQ(h.bucketIndex(-5.0), 0u);
    EXPECT_EQ(h.bucketIndex(1.0), 0u);
    EXPECT_EQ(h.bucketIndex(1.0001), 1u);
    EXPECT_EQ(h.bucketIndex(2.0), 1u);
    EXPECT_EQ(h.bucketIndex(4.0), 2u);
    EXPECT_EQ(h.bucketIndex(1e9), 3u);
}

TEST(Histogram, RecordAndSummaryStats)
{
    Histogram h(Histogram::Params{1.0, 2.0, 8});
    h.record(3.0);
    h.record(5.0);
    h.record(7.0);
    EXPECT_DOUBLE_EQ(h.count(), 3.0);
    EXPECT_DOUBLE_EQ(h.sum(), 15.0);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
    EXPECT_DOUBLE_EQ(h.min(), 3.0);
    EXPECT_DOUBLE_EQ(h.max(), 7.0);
    EXPECT_DOUBLE_EQ(h.bucketWeight(h.bucketIndex(3.0)), 1.0);
    EXPECT_DOUBLE_EQ(h.bucketWeight(h.bucketIndex(5.0)), 2.0);
}

TEST(Histogram, WeightedRecording)
{
    Histogram h;
    h.record(10.0, 1.13);
    h.record(20.0, 0.87);
    EXPECT_DOUBLE_EQ(h.count(), 2.0);
    EXPECT_DOUBLE_EQ(h.sum(), 10.0 * 1.13 + 20.0 * 0.87);
    // Non-positive weights are ignored.
    h.record(30.0, 0.0);
    h.record(30.0, -1.0);
    EXPECT_DOUBLE_EQ(h.count(), 2.0);
}

TEST(Histogram, PercentileExactForSingleValue)
{
    // All samples share one value: the percentile clamps to [min, max]
    // and must be exact — this is what lets the integration tests
    // assert CostModel constants through the histogram.
    Histogram h(Histogram::Params{50.0, 1.3, 48});
    for (int i = 0; i < 100; ++i)
        h.record(2500.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 2500.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 2500.0);
}

TEST(Histogram, PercentileMonotoneAndBucketAccurate)
{
    Histogram h(Histogram::Params{1.0, 2.0, 16});
    for (int i = 1; i <= 100; ++i)
        h.record(double(i));
    double p50 = h.percentile(50);
    double p99 = h.percentile(99);
    EXPECT_LE(p50, p99);
    // Accurate to one log-bucket: p50 of 1..100 is <= 64 (bucket bound
    // above 50), p99 within [max/2, max].
    EXPECT_GE(p50, 25.0);
    EXPECT_LE(p50, 64.0);
    EXPECT_GE(p99, 50.0);
    EXPECT_LE(p99, 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.record(5.0);
    h.reset();
    EXPECT_TRUE(h.empty());
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

// ----------------------------------------------------------- MetricRegistry

TEST(MetricRegistry, PrefixMatchesComponentBoundaries)
{
    EXPECT_TRUE(MetricRegistry::matchesPrefix("server.nic0.pf.rx", ""));
    EXPECT_TRUE(
        MetricRegistry::matchesPrefix("server.nic0.pf.rx", "server.nic0"));
    EXPECT_TRUE(MetricRegistry::matchesPrefix("server.nic0", "server.nic0"));
    EXPECT_FALSE(
        MetricRegistry::matchesPrefix("server.nic00.pf", "server.nic0"));
    EXPECT_FALSE(MetricRegistry::matchesPrefix("server", "server.nic0"));
}

TEST(MetricRegistry, AdaptsExistingStatsByRegistration)
{
    sim::Counter c;
    sim::Accumulator a;
    Histogram h;
    MetricRegistry reg;
    reg.add("srv.rx_frames", &c);
    reg.add("srv.rx_bytes", &a);
    reg.add("hist.latency", &h);
    reg.addGauge("srv.derived", []() { return 42.0; });

    // Values flow through with no re-registration.
    c.inc(7);
    a.add(1500);
    h.record(10.0);

    auto snap = reg.snapshot();
    ASSERT_EQ(snap.samples.size(), 4u);
    EXPECT_DOUBLE_EQ(snap.value("srv.rx_frames"), 7.0);
    EXPECT_DOUBLE_EQ(snap.value("srv.rx_bytes"), 1500.0);
    EXPECT_DOUBLE_EQ(snap.value("srv.derived"), 42.0);
    const MetricSample *s = snap.find("hist.latency");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind, MetricKind::Histogram);
    EXPECT_DOUBLE_EQ(s->count, 1.0);
    EXPECT_DOUBLE_EQ(s->p50, 10.0);

    // Subtree snapshot.
    auto sub = reg.snapshot("srv");
    EXPECT_EQ(sub.samples.size(), 3u);
    EXPECT_EQ(snap.find("nope"), nullptr);
    EXPECT_DOUBLE_EQ(snap.value("nope", -1.0), -1.0);
}

TEST(MetricRegistry, RemovePrefixDropsSubtree)
{
    sim::Counter c1, c2, c3;
    MetricRegistry reg;
    reg.add("a.b.x", &c1);
    reg.add("a.b.y", &c2);
    reg.add("a.bc", &c3);
    reg.removePrefix("a.b");
    EXPECT_FALSE(reg.contains("a.b.x"));
    EXPECT_FALSE(reg.contains("a.b.y"));
    EXPECT_TRUE(reg.contains("a.bc"));
}

TEST(MetricRegistryDeathTest, DuplicateNameAborts)
{
    sim::Counter c;
    MetricRegistry reg;
    reg.add("dup", &c);
    EXPECT_DEATH(reg.add("dup", &c), "dup");
}

// ------------------------------------------------------------------- JSON

TEST(Json, WriterParserRoundTrip)
{
    JsonWriter w;
    w.beginObject();
    w.kv("name", "q\"uo\\te\n");
    w.kv("num", 1.5);
    w.kv("neg", std::int64_t(-3));
    w.kv("flag", true);
    w.key("arr").beginArray();
    w.value(1.0).value(2.0).null();
    w.endArray();
    w.endObject();

    std::string err;
    auto doc = JsonValue::parse(w.str(), &err);
    ASSERT_TRUE(doc.has_value()) << err;
    EXPECT_EQ(doc->find("name")->str, "q\"uo\\te\n");
    EXPECT_DOUBLE_EQ(doc->find("num")->number, 1.5);
    EXPECT_DOUBLE_EQ(doc->find("neg")->number, -3.0);
    EXPECT_TRUE(doc->find("flag")->boolean);
    const JsonValue *arr = doc->find("arr");
    ASSERT_TRUE(arr != nullptr && arr->isArray());
    ASSERT_EQ(arr->items.size(), 3u);
    EXPECT_EQ(arr->items[2].type, JsonValue::Type::Null);
}

TEST(Json, ParserRejectsMalformed)
{
    EXPECT_FALSE(JsonValue::parse("{").has_value());
    EXPECT_FALSE(JsonValue::parse("{} trailing").has_value());
    EXPECT_FALSE(JsonValue::parse("[1,]").has_value());
    EXPECT_FALSE(JsonValue::parse("'single'").has_value());
}

TEST(Json, TolerantParseSkipsLeadingShellNoise)
{
    // A `bench > out.json` capture under a chatty shell profile starts
    // with warning lines (conda's auto_activate_base note is the
    // canonical one); the document itself must still parse — and still
    // be validated in full.
    std::string noisy =
        "WARNING conda.cli.condarc:set_key(484): Key auto_activate_base "
        "is not a known primitive parameter.\n"
        "another stray line\n"
        "  {\"schema\": \"x/v1\", \"n\": 3}\n";
    auto doc = JsonValue::parseTolerant(noisy);
    ASSERT_TRUE(doc.has_value());
    ASSERT_NE(doc->find("n"), nullptr);
    EXPECT_EQ(doc->find("n")->number, 3.0);

    // Arrays too, and noise-free input is unchanged.
    EXPECT_TRUE(JsonValue::parseTolerant("junk\n[1, 2]").has_value());
    EXPECT_TRUE(JsonValue::parseTolerant("{\"a\": 1}").has_value());

    // Still a full parse: garbage after the document, a truncated
    // document, or no document at all are errors.
    EXPECT_FALSE(JsonValue::parseTolerant("noise\n{} trailing")
                     .has_value());
    EXPECT_FALSE(JsonValue::parseTolerant("noise\n{").has_value());
    EXPECT_FALSE(JsonValue::parseTolerant("no json here").has_value());
}

TEST(Json, NonFiniteNumbersDegradeToNull)
{
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()),
              "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
}

// ----------------------------------------------------------- Chrome trace

TEST(ChromeTrace, ExportsSpansInstantsAndMetadata)
{
    ChromeTraceWriter w;
    auto cpu_track = w.track("server", "cpu0");
    auto irq_track = w.track("trace", "irq");
    w.addSpan(cpu_track, "guest-1", sim::Time::us(10), sim::Time::us(30));
    w.addInstant(irq_track, "msi", sim::Time::us(15));

    std::string err;
    auto doc = JsonValue::parse(w.toJson(), &err);
    ASSERT_TRUE(doc.has_value()) << err;
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_TRUE(events != nullptr && events->isArray());

    std::set<std::pair<double, double>> tracks;
    bool saw_span = false, saw_instant = false, saw_meta = false;
    for (const JsonValue &e : events->items) {
        const std::string &ph = e.find("ph")->str;
        if (ph == "M") {
            saw_meta = true;
            continue;
        }
        tracks.insert({e.find("pid")->number, e.find("tid")->number});
        if (ph == "X") {
            saw_span = true;
            EXPECT_DOUBLE_EQ(e.find("ts")->number, 10.0);
            EXPECT_DOUBLE_EQ(e.find("dur")->number, 20.0);
            EXPECT_EQ(e.find("name")->str, "guest-1");
        } else if (ph == "i") {
            saw_instant = true;
            EXPECT_DOUBLE_EQ(e.find("ts")->number, 15.0);
        }
    }
    EXPECT_TRUE(saw_span);
    EXPECT_TRUE(saw_instant);
    EXPECT_TRUE(saw_meta);
    // Acceptance: at least two distinct (pid, tid) tracks.
    EXPECT_GE(tracks.size(), 2u);
}

TEST(ChromeTrace, CapturesCpuServerSpans)
{
    sim::EventQueue eq;
    sim::CpuServer cpu(eq, "pcpu0", 1e9);
    ChromeTraceWriter w;
    w.attachCpu(cpu, "server");
    cpu.submit(100, "xen");
    eq.runAll();
    w.detachAll();
    EXPECT_EQ(cpu.spanTap(), nullptr);
    ASSERT_GE(w.eventCount(), 1u);

    auto doc = JsonValue::parse(w.toJson());
    ASSERT_TRUE(doc.has_value());
    bool found = false;
    for (const JsonValue &e : doc->find("traceEvents")->items) {
        if (e.find("ph")->str == "X" && e.find("name")->str == "xen")
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(ChromeTrace, ImportsTracerRecordsPerCategoryTracks)
{
    sim::Tracer t(16);
    t.enable(sim::TraceCat::Irq);
    t.enable(sim::TraceCat::Nic);
    t.record(sim::TraceCat::Irq, "vector 0x41");
    t.record(sim::TraceCat::Nic, "rx frame");

    ChromeTraceWriter w;
    w.importTracer(t);
    auto doc = JsonValue::parse(w.toJson());
    ASSERT_TRUE(doc.has_value());
    std::set<double> tids;
    for (const JsonValue &e : doc->find("traceEvents")->items) {
        if (e.find("ph")->str == "i")
            tids.insert(e.find("tid")->number);
    }
    EXPECT_EQ(tids.size(), 2u); // one track per category
}

TEST(ChromeTrace, DropsAtCapacityKeepingOldest)
{
    ChromeTraceWriter w(/*max_events=*/3);
    auto tr = w.track("p", "t");
    for (int i = 0; i < 5; ++i)
        w.addInstant(tr, "e" + std::to_string(i), sim::Time::us(i));
    EXPECT_EQ(w.eventCount(), 3u);
    EXPECT_EQ(w.droppedEvents(), 2u);
    auto doc = JsonValue::parse(w.toJson());
    ASSERT_TRUE(doc.has_value());
    EXPECT_NE(doc->find("sriovDroppedEvents"), nullptr);
}

// ----------------------------------------------------------------- Report

TEST(Report, JsonCarriesSnapshotsSeriesAndExpectations)
{
    sim::Counter c;
    c.inc(5);
    Histogram h;
    h.record(2.0);
    MetricRegistry reg;
    reg.add("srv.frames", &c);
    reg.add("hist.lat", &h);

    Report rep("fig99", "unit test");
    rep.setConfig("vms", 7.0);
    rep.setConfig("kernel", "2.6.28");
    rep.addSnapshot("case-a", reg);
    rep.addMetric("derived.gbps", 9.57);
    rep.addSeries("y_vs_x", {1, 2}, {10, 20});
    rep.expect("in_band", 100.0, 95.0, 10);
    rep.expect("out_of_band", 100.0, 50.0, 10);
    EXPECT_FALSE(rep.allPass());

    std::string err;
    auto doc = JsonValue::parse(rep.toJson(), &err);
    ASSERT_TRUE(doc.has_value()) << err;
    EXPECT_EQ(doc->find("schema")->str, Report::kSchema);
    EXPECT_EQ(doc->find("bench")->str, "fig99");
    EXPECT_DOUBLE_EQ(doc->find("config")->find("vms")->number, 7.0);

    const JsonValue *snaps = doc->find("snapshots");
    ASSERT_TRUE(snaps != nullptr && snaps->items.size() == 1);
    const JsonValue *metrics = snaps->items[0].find("metrics");
    ASSERT_NE(metrics, nullptr);
    const JsonValue *hist = metrics->find("hist.lat");
    ASSERT_NE(hist, nullptr);
    EXPECT_DOUBLE_EQ(hist->find("p99")->number, 2.0);

    const JsonValue *exps = doc->find("expectations");
    ASSERT_TRUE(exps != nullptr && exps->items.size() == 2);
    EXPECT_TRUE(exps->items[0].find("pass")->boolean);
    EXPECT_FALSE(exps->items[1].find("pass")->boolean);
    EXPECT_DOUBLE_EQ(exps->items[1].find("delta_pct")->number, 100.0);
    EXPECT_FALSE(doc->find("all_pass")->boolean);

    const JsonValue *series = doc->find("series");
    ASSERT_TRUE(series != nullptr && series->items.size() == 1);
    EXPECT_EQ(series->items[0].find("x")->items.size(), 2u);
}

TEST(Report, ZeroExpectedPassesOnlyOnExactMatch)
{
    Report rep("fig99", "t");
    EXPECT_TRUE(rep.expect("zero_ok", 0.0, 0.0, 10).pass);
    EXPECT_FALSE(rep.expect("zero_bad", 0.001, 0.0, 10).pass);
}

// ----------------------------------------------------------- BenchOptions

namespace {

BenchOptions
parseArgs(std::vector<std::string> args, const std::string &bench = "figXX")
{
    std::vector<char *> argv;
    static std::string prog = "bench";
    argv.push_back(prog.data());
    for (auto &a : args)
        argv.push_back(a.data());
    return BenchOptions::parse(int(argv.size()), argv.data(), bench);
}

} // namespace

TEST(BenchOptions, DefaultsOff)
{
    auto o = parseArgs({});
    EXPECT_FALSE(o.wantReport());
    EXPECT_FALSE(o.wantTrace());
    EXPECT_FALSE(o.helpRequested());
}

TEST(BenchOptions, OutDirDerivesReportAndTracePaths)
{
    auto o = parseArgs({"--out=bench/out", "--trace=irq,nic"}, "fig06");
    EXPECT_TRUE(o.wantReport());
    EXPECT_EQ(o.reportPath(), "bench/out/fig06.json");
    EXPECT_TRUE(o.wantTrace());
    EXPECT_EQ(o.tracePath(), "bench/out/fig06.trace.json");

    sim::Tracer t;
    o.applyTraceCategories(t);
    EXPECT_TRUE(t.enabled(sim::TraceCat::Irq));
    EXPECT_TRUE(t.enabled(sim::TraceCat::Nic));
    EXPECT_FALSE(t.enabled(sim::TraceCat::Migration));
}

TEST(BenchOptions, TraceArgAsExplicitPathEnablesAll)
{
    auto o = parseArgs({"--trace=/tmp/x.json"});
    EXPECT_TRUE(o.wantTrace());
    EXPECT_EQ(o.tracePath(), "/tmp/x.json");
    sim::Tracer t;
    o.applyTraceCategories(t);
    EXPECT_TRUE(t.anyEnabled());
    EXPECT_TRUE(t.enabled(sim::TraceCat::Migration));
}

TEST(BenchOptions, UnknownArgsAreKept)
{
    auto o = parseArgs({"--custom=1", "--help"});
    EXPECT_TRUE(o.helpRequested());
    ASSERT_EQ(o.extraArgs().size(), 1u);
    EXPECT_EQ(o.extraArgs()[0], "--custom=1");
}

TEST(BenchOptions, EnvironmentFallback)
{
    ::setenv("SRIOV_BENCH_OUT", "/tmp/envout", 1);
    ::setenv("SRIOV_TRACE", "migration", 1);
    auto o = parseArgs({}, "fig20");
    ::unsetenv("SRIOV_BENCH_OUT");
    ::unsetenv("SRIOV_TRACE");
    EXPECT_EQ(o.reportPath(), "/tmp/envout/fig20.json");
    EXPECT_TRUE(o.wantTrace());
    sim::Tracer t;
    o.applyTraceCategories(t);
    EXPECT_TRUE(t.enabled(sim::TraceCat::Migration));
    EXPECT_FALSE(t.enabled(sim::TraceCat::Irq));
}

// ------------------------------------------------------------ SimProfiler

TEST(SimProfiler, AttributesHostTimeByTag)
{
    sim::EventQueue eq;
    SimProfiler prof;
    prof.attach(eq);
    for (int i = 0; i < 10; ++i)
        eq.scheduleIn(sim::Time::ns(i), []() {}, "nic.rx");
    eq.scheduleIn(sim::Time::us(1), []() {}, "intr.timer");
    eq.runAll();
    prof.detach();
    EXPECT_EQ(eq.execHookCount(), 0u);

    EXPECT_EQ(prof.totalEvents(), 11u);
    auto tags = prof.byTag();
    ASSERT_FALSE(tags.empty());
    std::uint64_t nic = 0, intr = 0;
    for (const auto &t : tags) {
        if (t.tag == "nic.rx")
            nic = t.events;
        if (t.tag == "intr.timer")
            intr = t.events;
    }
    EXPECT_EQ(nic, 10u);
    EXPECT_EQ(intr, 1u);

    auto comps = prof.byComponent();
    bool nic_comp = false;
    for (const auto &c : comps)
        nic_comp = nic_comp || (c.tag == "nic" && c.events == 10);
    EXPECT_TRUE(nic_comp);
    EXPECT_FALSE(prof.toString().empty());
}

// ---------------------------------------------------------------- PathTrace

TEST(PathTrace, StageNamesRoundTrip)
{
    for (unsigned i = 0; i < PathTracer::kStageCount; ++i) {
        auto s = static_cast<PathStage>(i);
        EXPECT_EQ(pathStageFromName(pathStageName(s)), s);
    }
    EXPECT_EQ(pathStageFromName("no_such_stage"), PathStage::Count);
    EXPECT_STREQ(pathStageName(PathStage::Origin), "origin");
    EXPECT_STREQ(pathStageName(PathStage::GuestRx), "guest_rx");
}

TEST(PathTrace, SampleHashIsDeterministicAndBaseRateHolds)
{
    // Sampling is a pure function of the id: no state, no RNG, so two
    // testbeds (or two --jobs workers) sample the same packets.
    for (std::uint64_t id = 1; id < 100; ++id)
        EXPECT_EQ(PathTracer::sampleHash(id), PathTracer::sampleHash(id));
    std::uint64_t sampled = 0;
    constexpr std::uint64_t kIds = 1 << 16;
    for (std::uint64_t id = 1; id <= kIds; ++id)
        sampled += PathTracer::baseSampled(id) ? 1 : 0;
    // splitmix64 should keep the 1-in-64 base rate within 20%.
    const double rate = double(sampled) / double(kIds);
    EXPECT_NEAR(rate, 1.0 / 64.0, 0.2 / 64.0);
}

TEST(PathTrace, ModeControlsExportMaskOnly)
{
    {
        PathTraceScope off(PathTraceMode::Off);
        PathTracer t;
        EXPECT_EQ(t.mode(), PathTraceMode::Off);
        EXPECT_EQ(t.exportMask(), PathTracer::kBaseSampleMask);
    }
    {
        PathTraceScope sampled(PathTraceMode::Sampled);
        PathTracer t;
        EXPECT_EQ(t.exportMask(), 7u);
    }
    {
        PathTraceScope full(PathTraceMode::Full);
        PathTracer t;
        EXPECT_EQ(t.exportMask(), 0u);
    }
    EXPECT_STREQ(pathTraceModeName(PathTraceMode::Sampled), "sampled");
}

TEST(PathTrace, RingOverwritesOldestKeepingLifetimeCount)
{
    PathTraceScope full(PathTraceMode::Full);
    PathTracer t(PathTracer::Params{4, 16});
    std::uint16_t c = t.registerComponent("nic");
    for (std::uint64_t id = 1; id <= 10; ++id)
        t.record(c, PathStage::GuestTx, id, sim::Time::ns(id));

    PathSnapshot snap = t.snapshot();
    ASSERT_EQ(snap.comps.size(), 1u);
    const PathCompDump &d = snap.comps[0];
    EXPECT_EQ(d.name, "nic");
    EXPECT_EQ(d.capacity, 4u);
    EXPECT_EQ(d.written, 10u);
    ASSERT_EQ(d.records.size(), 4u);
    // Oldest-first: ids 7..10 survive, 1..6 were overwritten.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(d.records[i].trace_id, 7 + i);
    EXPECT_EQ(snap.records, 10u);
}

TEST(PathTrace, UntracedAndUnknownComponentRecordsAreIgnored)
{
    PathTraceScope full(PathTraceMode::Full);
    PathTracer t(PathTracer::Params{4, 16});
    std::uint16_t c = t.registerComponent("nic");
    t.record(c, PathStage::GuestTx, 0, sim::Time::ns(1));     // id 0
    t.record(c + 7, PathStage::GuestTx, 5, sim::Time::ns(1)); // bad comp
    EXPECT_EQ(t.recordCount(), 0u);
    EXPECT_TRUE(t.snapshot().comps[0].records.empty());
}

namespace {

/** First trace id the 1/64 base sampler accepts. */
std::uint64_t
firstBaseSampledId()
{
    std::uint64_t id = 1;
    while (!sriov::obs::PathTracer::baseSampled(id))
        ++id;
    return id;
}

} // namespace

TEST(PathTrace, AttributionChargesDeltasBetweenVisitedStages)
{
    // Attribution runs at the base rate in EVERY mode — Off included —
    // which is what lets figXX.json carry path_stages while staying
    // byte-identical across --pathtrace settings.
    PathTraceScope off(PathTraceMode::Off);
    PathTracer t(PathTracer::Params{64, 16});
    std::uint16_t c = t.registerComponent("net");
    const std::uint64_t id = firstBaseSampledId();

    t.record(c, PathStage::Origin, id, sim::Time::us(1));
    t.record(c, PathStage::GuestTx, id, sim::Time::us(3));
    t.record(c, PathStage::GuestRx, id, sim::Time::us(11));

    PathSnapshot snap = t.snapshot();
    ASSERT_TRUE(snap.hasAttribution());
    EXPECT_EQ(snap.completed, 1u);
    EXPECT_DOUBLE_EQ(snap.total.count, 1.0);
    EXPECT_DOUBLE_EQ(snap.total.mean_us, 10.0);
    // Only visited stages appear, in causal order; each is charged the
    // time since the previous visited stage.
    ASSERT_EQ(snap.stages.size(), 2u);
    EXPECT_EQ(snap.stages[0].stage, "guest_tx");
    EXPECT_DOUBLE_EQ(snap.stages[0].mean_us, 2.0);
    EXPECT_EQ(snap.stages[1].stage, "guest_rx");
    EXPECT_DOUBLE_EQ(snap.stages[1].mean_us, 8.0);
}

TEST(PathTrace, StitchDropsHeadlessTrailsAndOrdersHops)
{
    PathTraceScope full(PathTraceMode::Full);
    PathTracer t(PathTracer::Params{8, 16});
    std::uint16_t a = t.registerComponent("net");
    std::uint16_t b = t.registerComponent("nic");

    // Packet 1: full trail, records interleaved across components.
    t.record(a, PathStage::Origin, 1, sim::Time::us(1));
    t.record(b, PathStage::GuestTx, 1, sim::Time::us(2));
    t.record(a, PathStage::GuestRx, 1, sim::Time::us(9));
    // Packet 2: head overwritten (never recorded) — must be dropped.
    t.record(b, PathStage::WireRx, 2, sim::Time::us(3));

    auto trails = stitchTrails(t.snapshot());
    ASSERT_EQ(trails.size(), 1u);
    EXPECT_EQ(trails[0].id, 1u);
    ASSERT_EQ(trails[0].hops.size(), 3u);
    EXPECT_EQ(trails[0].hops[0].stage,
              static_cast<std::uint8_t>(PathStage::Origin));
    for (std::size_t i = 1; i < trails[0].hops.size(); ++i)
        EXPECT_GE(trails[0].hops[i].when_ps,
                  trails[0].hops[i - 1].when_ps);
}

TEST(PathTrace, FlightRecorderDumpCarriesRingsAndTrails)
{
    PathTraceScope full(PathTraceMode::Full);
    PathTracer t(PathTracer::Params{8, 16});
    std::uint16_t c = t.registerComponent("nic0");
    t.record(c, PathStage::Origin, 3, sim::Time::us(1));
    t.record(c, PathStage::GuestRx, 3, sim::Time::us(5));
    t.mark(c, PathStage::LapicDeliver, sim::Time::us(4));

    std::string dump = t.dumpText();
    EXPECT_NE(dump.find("pathtrace flight recorder"), std::string::npos);
    EXPECT_NE(dump.find("ring nic0"), std::string::npos);
    EXPECT_NE(dump.find("origin@"), std::string::npos);
    EXPECT_NE(dump.find("guest_rx@"), std::string::npos);
    EXPECT_EQ(t.snapshot().marks, 1u);
}

TEST(PathTrace, WritePathTraceFileRoundTripsThroughParser)
{
    PathTraceScope full(PathTraceMode::Full);
    PathTracer t(PathTracer::Params{8, 16});
    std::uint16_t c = t.registerComponent("nic");
    t.record(c, PathStage::Origin, 1, sim::Time::us(1));
    t.record(c, PathStage::GuestRx, 1, sim::Time::us(2));

    std::vector<std::pair<std::string, PathSnapshot>> cases;
    cases.emplace_back("case0", t.snapshot());
    std::string path = "obs_test_pathtrace_tmp.json";
    ASSERT_TRUE(writePathTraceFile(path, "figXX", "trace", cases));

    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string err;
    auto doc = JsonValue::parse(ss.str(), &err);
    ASSERT_TRUE(doc.has_value()) << err;
    EXPECT_EQ(doc->find("schema")->str, "sriov-pathtrace/v1");
    EXPECT_EQ(doc->find("kind")->str, "trace");
    ASSERT_EQ(doc->find("cases")->items.size(), 1u);
    const JsonValue &c0 = doc->find("cases")->items[0];
    EXPECT_EQ(c0.find("label")->str, "case0");
    EXPECT_EQ(c0.find("mode")->str, "full");
    std::remove(path.c_str());
}

TEST(PathTrace, ExportPathFlowsEmitsBoundSlices)
{
    PathTraceScope full(PathTraceMode::Full);
    PathTracer t(PathTracer::Params{8, 16});
    std::uint16_t a = t.registerComponent("net");
    std::uint16_t b = t.registerComponent("nic");
    t.record(a, PathStage::Origin, 1, sim::Time::us(1));
    t.record(b, PathStage::WireRx, 1, sim::Time::us(2));
    t.record(a, PathStage::GuestRx, 1, sim::Time::us(3));

    ChromeTraceWriter w;
    exportPathFlows(w, "case0", t.snapshot());
    std::string json = w.toJson();
    // One 'X' slice per hop plus the flow binding ('s'/'t'/'f').
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_NE(json.find("origin"), std::string::npos);
    EXPECT_NE(json.find("wire_rx"), std::string::npos);
}
