/**
 * @file
 * Tests for the correctness-tooling layer (src/check/): the
 * InvariantChecker — including negative tests that deliberately commit
 * each class of simulator bug and assert it is reported — and the
 * DeterminismHarness order-digest auditor.
 */

#include <gtest/gtest.h>

#include "check/determinism.hpp"
#include "check/invariant_checker.hpp"
#include "core/testbed.hpp"
#include "intr/interrupt_router.hpp"
#include "intr/lapic.hpp"
#include "nic/desc_ring.hpp"
#include "nic/l2_switch.hpp"
#include "nic/wire.hpp"
#include "pci/function.hpp"
#include "sim/event_queue.hpp"

using namespace sriov;
using check::DeterminismHarness;
using check::Invariant;
using check::InvariantChecker;
using check::RunDigest;

// --- Negative tests: commit the bug, assert the report. ------------

TEST(InvariantChecker, ReportsScheduleInThePast)
{
    sim::EventQueue eq;
    InvariantChecker chk(eq);
    eq.scheduleAt(sim::Time::us(5), []() {});
    eq.runAll();

    bool ran = false;
    // Without an observer this would abort; with the checker it is
    // reported and the event clamps to now().
    eq.scheduleAt(sim::Time::us(1), [&ran]() { ran = true; });
    EXPECT_EQ(chk.count(Invariant::SchedulePast), 1u);
    eq.runAll();
    EXPECT_TRUE(ran);
    EXPECT_EQ(eq.now(), sim::Time::us(5));
    EXPECT_FALSE(chk.ok());
    EXPECT_NE(chk.report().find("schedule-in-past"), std::string::npos);
}

TEST(InvariantChecker, ReportsRingOverflow)
{
    sim::EventQueue eq;
    InvariantChecker chk(eq);
    nic::DescRing ring(4);
    chk.watchRing("rx", ring, /*must_not_drop=*/true);

    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(ring.post(mem::Addr(0x1000 * (i + 1))));
    EXPECT_FALSE(ring.post(0x9000));    // full: driver would retry
    // Device side runs dry mid-burst and drops the frame.
    ring.countOverflow();

    chk.checkNow();
    EXPECT_EQ(chk.count(Invariant::RingOverflow), 1u);
    // The violation is edge-triggered: a second poll without new drops
    // stays quiet.
    chk.checkNow();
    EXPECT_EQ(chk.count(Invariant::RingOverflow), 1u);
}

TEST(InvariantChecker, ReportsSpuriousEoi)
{
    sim::EventQueue eq;
    InvariantChecker chk(eq);
    intr::Lapic lapic;
    chk.watchLapic("vcpu0", lapic);

    lapic.eoi();    // nothing accepted, nothing in service: a bug
    chk.checkNow();
    EXPECT_EQ(chk.count(Invariant::SpuriousEoi), 1u);

    // A proper accept -> EOI cycle stays clean.
    chk.clearViolations();
    lapic.accept(0x41);
    lapic.eoi();
    chk.checkNow();
    EXPECT_TRUE(chk.ok());
}

TEST(InvariantChecker, ReportsDeliveryOnMaskedVector)
{
    sim::EventQueue eq;
    InvariantChecker chk(eq);
    intr::InterruptRouter router;
    chk.watchRouter(router);

    pci::PciFunction fn(pci::Bdf{1, 0, 0}, 0x8086, 0x10ca, 0x020000,
                        pci::PciFunction::Kind::Virtual);
    fn.addMsix(3, 0);
    chk.watchFunction(fn);
    router.attachFunction(fn);

    intr::Vector v = 0x51;
    bool handled = false;
    router.bindVector(v, [&](intr::Vector, pci::Rid) { handled = true; });
    fn.msix()->programEntry(0, pci::MsiMessage::forVector(0, v));
    fn.msix()->setEnable(true);
    // Entry 0 still masked (MSI-X entries come up masked): the
    // well-behaved path defers.
    EXPECT_FALSE(fn.signalMsix(0));
    EXPECT_TRUE(chk.ok());

    // A buggy device model bypasses the mask and injects directly.
    router.deliverMsi(fn.rid(), fn.msix()->entry(0).msg);
    EXPECT_TRUE(handled);
    EXPECT_EQ(chk.count(Invariant::MaskedDelivery), 1u);

    // Unmasked, the same delivery is legitimate.
    chk.clearViolations();
    fn.msix()->maskEntry(0, false);
    EXPECT_TRUE(fn.signalMsix(0));
    EXPECT_TRUE(chk.ok());
}

TEST(InvariantChecker, ReportsEventLeakAtQuiescence)
{
    sim::EventQueue eq;
    InvariantChecker chk(eq);
    eq.scheduleAt(sim::Time::sec(10), []() {});    // never run
    eq.runUntil(sim::Time::sec(1));

    chk.expectQuiesced();
    EXPECT_EQ(chk.count(Invariant::EventLeak), 1u);
}

TEST(InvariantChecker, CleanRunToQuiescenceHasNoViolations)
{
    sim::EventQueue eq;
    InvariantChecker chk(eq);
    nic::DescRing ring(8);
    nic::L2Switch sw;
    chk.watchRing("rx", ring, true);
    chk.watchSwitch("l2", sw);

    sw.setFilter(nic::MacAddr::make(1, 1), 0, 1);
    nic::Packet pkt;
    pkt.dst = nic::MacAddr::make(1, 1);
    EXPECT_TRUE(sw.classify(pkt).has_value());
    pkt.dst = nic::MacAddr::make(1, 2);
    EXPECT_FALSE(sw.classify(pkt).has_value());

    ring.post(0x1000);
    ring.post(0x2000);
    EXPECT_TRUE(ring.take().has_value());
    ring.reset();    // discards one: accounting must still balance

    eq.scheduleIn(sim::Time::us(1), []() {});
    eq.runAll();
    chk.expectQuiesced();
    EXPECT_TRUE(chk.ok()) << chk.report();
}

// --- Checker over a full testbed experiment. ------------------------

TEST(InvariantChecker, FullSriovExperimentHoldsAllInvariants)
{
    core::Testbed::Params p;
    p.num_ports = 1;
    core::Testbed tb(p);
    InvariantChecker chk(tb.eq());

    auto &g = tb.addGuest(vmm::DomainType::Hvm,
                          core::Testbed::NetMode::Sriov);
    tb.startUdpToGuest(g, 600e6);
    tb.watchAll(chk);

    auto m = tb.measure(sim::Time::ms(100), sim::Time::ms(400));
    EXPECT_GT(m.total_goodput_bps, 100e6);
    // Deadline-bounded run: periodic timers legitimately stay live, so
    // poll instantaneous invariants only (no expectQuiesced()).
    chk.checkNow();
    EXPECT_TRUE(chk.ok()) << chk.report();
}

// --- Determinism auditor. -------------------------------------------

namespace {

RunDigest
smallSriovRun(unsigned)
{
    core::Testbed::Params p;
    p.num_ports = 1;
    core::Testbed tb(p);
    auto &g = tb.addGuest(vmm::DomainType::Hvm,
                          core::Testbed::NetMode::Sriov);
    tb.startUdpToGuest(g, 400e6);
    tb.run(sim::Time::ms(200));
    return RunDigest::of(tb.eq());
}

} // namespace

TEST(Determinism, SameExperimentTwiceYieldsSameDigest)
{
    auto r = DeterminismHarness::runTwice(smallSriovRun);
    EXPECT_TRUE(r.match()) << r.toString();
    EXPECT_GT(r.first.events, 0u);
}

TEST(Determinism, DifferentWorkloadsYieldDifferentDigests)
{
    auto with_rate = [](double bps) {
        core::Testbed::Params p;
        p.num_ports = 1;
        core::Testbed tb(p);
        auto &g = tb.addGuest(vmm::DomainType::Hvm,
                              core::Testbed::NetMode::Sriov);
        tb.startUdpToGuest(g, bps);
        tb.run(sim::Time::ms(50));
        return RunDigest::of(tb.eq());
    };
    EXPECT_NE(with_rate(300e6).digest, with_rate(600e6).digest);
}

TEST(Determinism, AuditReturnsTheMatchingDigest)
{
    sim::EventQueue probe;    // just to prove digests are per-queue
    EXPECT_EQ(probe.orderDigest(), sim::EventQueue().orderDigest());

    RunDigest d = DeterminismHarness::audit("small-sriov", smallSriovRun);
    EXPECT_EQ(d, smallSriovRun(2));
}

TEST(Determinism, DigestCoversTagsAndTimes)
{
    auto run = [](const char *tag, std::int64_t at_us) {
        sim::EventQueue eq;
        eq.scheduleAt(sim::Time::us(at_us), []() {}, tag);
        eq.runAll();
        return eq.orderDigest();
    };
    EXPECT_EQ(run("a", 1), run("a", 1));
    EXPECT_NE(run("a", 1), run("b", 1));
    EXPECT_NE(run("a", 1), run("a", 2));
}

// --- Flight recorder: failures ship their own post-mortem. ----------

TEST(InvariantChecker, FlightRecorderDumpsPacketHistoryOnViolation)
{
    // An induced invariant violation must yield a report carrying the
    // path tracer's flight recorder: the always-on 1/64 base sample of
    // per-packet stage histories, so a failure is debuggable from the
    // dump alone. watchAll() attaches the testbed's tracer.
    core::Testbed::Params p;
    p.num_ports = 1;
    core::Testbed tb(p);
    InvariantChecker chk(tb.eq());

    auto &g = tb.addGuest(vmm::DomainType::Hvm,
                          core::Testbed::NetMode::Sriov);
    tb.startUdpToGuest(g, 600e6);
    tb.watchAll(chk);
    tb.run(sim::Time::ms(100));

    // Enough traffic that at least one base-sampled packet completed
    // its origin -> guest_rx trail.
    EXPECT_GT(tb.pathTracer().completedCount(), 0u);

    // Commit a bug: schedule into the simulated past.
    tb.eq().scheduleAt(sim::Time::us(1), []() {});
    EXPECT_FALSE(chk.ok());

    std::string rep = chk.report();
    EXPECT_NE(rep.find("schedule-in-past"), std::string::npos);
    EXPECT_NE(rep.find("pathtrace flight recorder"), std::string::npos);
    // The dump stitches complete stage histories: a sampled packet's
    // trail runs from origin through the NIC RX path to guest_rx.
    for (const char *stage :
         {"origin@", "wire_rx@", "rx_dma@", "lapic_deliver@",
          "guest_rx@"})
        EXPECT_NE(rep.find(stage), std::string::npos) << stage;
}
