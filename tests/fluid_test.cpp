// Tests for fluid (flow-level) simulation mode: the FlowLedger's
// steadiness hysteresis and period arithmetic, the FluidVisitor
// capture/verify/apply protocol, the global mode switch, the
// FluidDirector's shift-safe tag allowlist, and the equivalence
// contract on a live testbed (--fluid=exact vs --fluid=on share one
// schedule, so integer-derived measurements must agree exactly).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/fluid_path.hpp"
#include "core/testbed.hpp"
#include "sim/fluid.hpp"
#include "sim/time.hpp"
#include "vmm/domain.hpp"

using namespace sriov;
using sim::FlowLedger;
using sim::FluidMode;
using sim::FluidTransition;
using sim::Time;

namespace {

/** Feed @p n sends on an exact @p gap grid starting after @p from. */
Time
sendGrid(FlowLedger &l, unsigned flow, Time from, Time gap, unsigned n)
{
    Time t = from;
    for (unsigned i = 0; i < n; ++i) {
        t = t + gap;
        l.onSend(flow, t);
    }
    return t;
}

} // namespace

// ---------------------------------------------------------------------
// FlowLedger: steadiness hysteresis
// ---------------------------------------------------------------------

TEST(FlowLedger, SteadyAfterExactlyKSteadyGapsEqualGaps)
{
    FlowLedger l;
    unsigned f = l.addFlow("udp-0");
    Time g = Time::us(10);
    // First send records the origin; the second establishes the gap
    // (equal_gaps stays 0); each further equal gap counts.
    Time t = sendGrid(l, f, Time(), g, 2);
    for (unsigned k = 0; k < FlowLedger::kSteadyGaps - 1; ++k) {
        t = sendGrid(l, f, t, g, 1);
        EXPECT_FALSE(l.flowSteady(f)) << "after " << k + 2 << " gaps";
    }
    sendGrid(l, f, t, g, 1);
    EXPECT_TRUE(l.flowSteady(f));
    EXPECT_TRUE(l.allSteady());
    EXPECT_EQ(l.flowGap(f), g);
}

TEST(FlowLedger, JitteredGapRestartsTheCount)
{
    FlowLedger l;
    unsigned f = l.addFlow("udp-0");
    Time g = Time::us(10);
    Time t = sendGrid(l, f, Time(), g, FlowLedger::kSteadyGaps);
    // One late packet: the gap changes, steadiness restarts from zero.
    t = t + g + Time::ns(1);
    l.onSend(f, t);
    t = sendGrid(l, f, t, g, 1);    // new gap differs again (g vs g+1ns)
    EXPECT_FALSE(l.flowSteady(f));
    t = sendGrid(l, f, t, g, FlowLedger::kSteadyGaps);
    EXPECT_TRUE(l.flowSteady(f));
}

TEST(FlowLedger, TransitionImposesTheReentryHold)
{
    FlowLedger l;
    unsigned f = l.addFlow("udp-0");
    Time g = Time::us(10);
    Time t = sendGrid(l, f, Time(), g, 2 + FlowLedger::kSteadyGaps);
    ASSERT_TRUE(l.flowSteady(f));

    l.transition(f, FluidTransition::Drop);
    EXPECT_FALSE(l.flowSteady(f));
    EXPECT_FALSE(l.allSteady());
    EXPECT_EQ(l.transitions(FluidTransition::Drop), 1u);

    // Re-entry costs kHoldGaps (draining the hold) plus kSteadyGaps
    // (rebuilding the equal-gap count) — one gap short must not do.
    unsigned need = FlowLedger::kHoldGaps + FlowLedger::kSteadyGaps;
    t = sendGrid(l, f, t, g, need - 1);
    EXPECT_FALSE(l.flowSteady(f));
    sendGrid(l, f, t, g, 1);
    EXPECT_TRUE(l.flowSteady(f));
}

TEST(FlowLedger, EveryTransitionKindUnsteadiesAllFlows)
{
    for (unsigned k = 0; k < unsigned(FluidTransition::Count); ++k) {
        FlowLedger l;
        unsigned a = l.addFlow("a");
        unsigned b = l.addFlow("b");
        sendGrid(l, a, Time(), Time::us(5),
                 2 + FlowLedger::kSteadyGaps);
        sendGrid(l, b, Time(), Time::us(5),
                 2 + FlowLedger::kSteadyGaps);
        ASSERT_TRUE(l.allSteady());
        l.transitionAll(FluidTransition(k));
        EXPECT_FALSE(l.flowSteady(a)) << sim::fluidTransitionName(
            FluidTransition(k));
        EXPECT_FALSE(l.flowSteady(b));
        EXPECT_EQ(l.transitions(FluidTransition(k)), 1u);
        EXPECT_EQ(l.totalTransitions(), 1u);
    }
}

TEST(FlowLedger, ShardEdgeIsATransitionLikeAnyOther)
{
    // Fluid segments are per-island: a frame crossing a shard boundary
    // must break steadiness exactly like a drop does (the ledger does
    // not special-case it — this pins that).
    FlowLedger l;
    unsigned f = l.addFlow("cross");
    Time t = sendGrid(l, f, Time(), Time::us(3),
                      2 + FlowLedger::kSteadyGaps);
    ASSERT_TRUE(l.flowSteady(f));
    // simlint:allow(shard-channel): names the transition enum, no send
    l.transition(f, FluidTransition::ShardEdge);
    EXPECT_FALSE(l.flowSteady(f));
    // simlint:allow(shard-channel): names the transition enum, no send
    EXPECT_EQ(l.transitions(FluidTransition::ShardEdge), 1u);
    sendGrid(l, f, t, Time::us(3),
             FlowLedger::kHoldGaps + FlowLedger::kSteadyGaps);
    EXPECT_TRUE(l.flowSteady(f));
}

TEST(FlowLedger, EndedFlowsAreExcludedFromAllSteady)
{
    FlowLedger l;
    unsigned live = l.addFlow("live");
    unsigned dead = l.addFlow("dead");
    sendGrid(l, live, Time(), Time::us(7), 2 + FlowLedger::kSteadyGaps);
    sendGrid(l, dead, Time(), Time::us(7), 3);    // never steady
    EXPECT_FALSE(l.allSteady());
    l.endFlow(dead);
    EXPECT_TRUE(l.allSteady());
    // No live flows at all is NOT steady — nothing to certify.
    l.endFlow(live);
    EXPECT_FALSE(l.allSteady());
}

// ---------------------------------------------------------------------
// FlowLedger: period arithmetic
// ---------------------------------------------------------------------

TEST(FlowLedger, CommonPeriodIsTheLcmOfSteadyGaps)
{
    FlowLedger l;
    unsigned a = l.addFlow("a");
    unsigned b = l.addFlow("b");
    sendGrid(l, a, Time(), Time::us(2), 2 + FlowLedger::kSteadyGaps);
    sendGrid(l, b, Time(), Time::us(3), 2 + FlowLedger::kSteadyGaps);
    EXPECT_EQ(l.commonPeriod(), Time::us(6));
    // A cap below the LCM means no usable hyperperiod.
    EXPECT_EQ(l.commonPeriod(Time::us(5)), Time());
}

TEST(FlowLedger, CommonPeriodRequiresEveryLiveFlowSteady)
{
    FlowLedger l;
    unsigned a = l.addFlow("a");
    l.addFlow("b");    // registered, never sends
    sendGrid(l, a, Time(), Time::us(2), 2 + FlowLedger::kSteadyGaps);
    EXPECT_EQ(l.commonPeriod(), Time());
}

TEST(FlowLedger, SourcePeriodIgnoresDerivedFlowsAndHolds)
{
    FlowLedger l;
    unsigned src = l.addFlow("udp", sim::FlowKind::Source);
    unsigned drv = l.addFlow("nic.raise", sim::FlowKind::Derived);
    sendGrid(l, src, Time(), Time::us(4), 2 + FlowLedger::kSteadyGaps);
    // The derived flow's incommensurate gap must not pollute the
    // source grid devices quantize onto.
    sendGrid(l, drv, Time(), Time::ns(777), 2 + FlowLedger::kSteadyGaps);
    EXPECT_EQ(l.sourcePeriod(), Time::us(4));

    // The hint survives a hysteresis hold: a transition burst (every
    // pool retuning its ITR on the same sample edge) must not blind
    // the pools that retune after the first one. Correctness rests on
    // the probe certificate, not on this hint.
    l.transition(src, FluidTransition::ItrChange);
    EXPECT_FALSE(l.flowSteady(src));
    EXPECT_EQ(l.sourcePeriod(), Time::us(4));
}

TEST(FlowLedger, GridSendsUntilMatchesBruteForceReplay)
{
    // Closed form vs the event-per-send loop it replaces.
    struct Case
    {
        std::int64_t last_ps, gap_ps, until_ps;
    };
    const Case cases[] = {
        {0, 10, 100},      {0, 10, 99},        {0, 10, 101},
        {5, 7, 5},         {5, 7, 6},          {5, 7, 12},
        {1000, 333, 9999}, {42, 1, 43},        {0, 24608000, 2000000000},
    };
    for (const Case &c : cases) {
        Time last = Time::ps(c.last_ps);
        Time gap = Time::ps(c.gap_ps);
        Time until = Time::ps(c.until_ps);
        std::uint64_t brute = 0;
        for (Time t = last + gap; t <= until; t = t + gap)
            ++brute;
        EXPECT_EQ(FlowLedger::gridSendsUntil(last, gap, until), brute)
            << "last=" << c.last_ps << " gap=" << c.gap_ps
            << " until=" << c.until_ps;
    }
    EXPECT_EQ(FlowLedger::gridSendsUntil(Time(), Time(), Time::us(1)),
              0u);
}

TEST(FlowLedger, WarpShiftsTheGridWithoutBreakingSteadiness)
{
    FlowLedger l;
    unsigned f = l.addFlow("udp-0");
    Time g = Time::us(10);
    Time t = sendGrid(l, f, Time(), g, 2 + FlowLedger::kSteadyGaps);
    ASSERT_TRUE(l.flowSteady(f));

    // A warp jumps the clock by n periods; the ledger shifts its
    // last-send instants so the next real send still measures g, not
    // a warp-length outlier that would restart the hysteresis.
    Time warp = Time::ms(50);
    l.warpBy(warp);
    l.onSend(f, t + warp + g);
    EXPECT_TRUE(l.flowSteady(f));
    EXPECT_EQ(l.flowGap(f), g);
}

// ---------------------------------------------------------------------
// FluidVisitor: capture / verify / apply
// ---------------------------------------------------------------------

namespace {

struct ToyState
{
    std::uint64_t packets = 0;
    std::int64_t credit = 0;
    double cycles = 0;
    Time deadline;
    std::uint64_t ring_size = 64;

    void
    visit(sim::FluidVisitor &v)
    {
        v.u64("packets", packets);
        v.i64("credit", credit);
        v.f64("cycles", cycles);
        v.time("deadline", deadline);
        v.inv("ring_size", ring_size);
    }

    void
    stepOnePeriod()
    {
        packets += 100;
        credit -= 3;
        cycles += 0.5;
        deadline = deadline + Time::us(2);
    }
};

} // namespace

TEST(FluidVisitor, ConstantDeltasVerify)
{
    ToyState s;
    using V = sim::FluidVisitor;
    V c0(V::Pass::Capture);
    s.visit(c0);
    s.stepOnePeriod();
    V c1(V::Pass::Capture);
    s.visit(c1);
    s.stepOnePeriod();
    V c2(V::Pass::Capture);
    s.visit(c2);

    std::string why;
    EXPECT_TRUE(c2.verifyAgainst(c1, &c0, &why)) << why;
    EXPECT_EQ(c2.slots(), 5u);
}

TEST(FluidVisitor, NonConstantDeltaIsRejectedByName)
{
    ToyState s;
    using V = sim::FluidVisitor;
    V c0(V::Pass::Capture);
    s.visit(c0);
    s.stepOnePeriod();
    V c1(V::Pass::Capture);
    s.visit(c1);
    s.stepOnePeriod();
    s.packets += 1;    // burst: second delta 101 vs first 100
    V c2(V::Pass::Capture);
    s.visit(c2);

    std::string why;
    EXPECT_FALSE(c2.verifyAgainst(c1, &c0, &why));
    EXPECT_NE(why.find("packets"), std::string::npos) << why;
}

TEST(FluidVisitor, InvariantSlotMustNotMove)
{
    ToyState s;
    using V = sim::FluidVisitor;
    V c0(V::Pass::Capture);
    s.visit(c0);
    s.stepOnePeriod();
    V c1(V::Pass::Capture);
    s.visit(c1);
    s.stepOnePeriod();
    s.ring_size = 128;    // ring resize mid-probe
    V c2(V::Pass::Capture);
    s.visit(c2);

    std::string why;
    EXPECT_FALSE(c2.verifyAgainst(c1, &c0, &why));
    EXPECT_NE(why.find("ring_size"), std::string::npos) << why;
}

TEST(FluidVisitor, ApplyWritesNPeriodsInClosedForm)
{
    ToyState s;
    using V = sim::FluidVisitor;
    V c0(V::Pass::Capture);
    s.visit(c0);
    s.stepOnePeriod();
    V c1(V::Pass::Capture);
    s.visit(c1);

    // Brute-force replay of 1000 more periods on a copy...
    ToyState replay = s;
    for (int i = 0; i < 1000; ++i)
        replay.stepOnePeriod();

    // ...must equal one closed-form apply on the original.
    V apply(V::Pass::Apply);
    apply.armApply(c0, c1, 1000);
    s.visit(apply);

    EXPECT_EQ(s.packets, replay.packets);
    EXPECT_EQ(s.credit, replay.credit);
    EXPECT_EQ(s.deadline, replay.deadline);
    EXPECT_NEAR(s.cycles, replay.cycles, 1e-9 * replay.cycles);
    EXPECT_EQ(s.ring_size, 64u);    // inv slots are never written
}

// ---------------------------------------------------------------------
// Mode switch and director surface
// ---------------------------------------------------------------------

TEST(FluidMode, ScopeSetsAndRestores)
{
    ASSERT_EQ(sim::fluidMode(), FluidMode::Off);
    {
        sim::FluidScope on(FluidMode::On);
        EXPECT_EQ(sim::fluidMode(), FluidMode::On);
        EXPECT_TRUE(sim::fluidEnabled());
        {
            sim::FluidScope exact(FluidMode::Exact);
            EXPECT_EQ(sim::fluidMode(), FluidMode::Exact);
            EXPECT_TRUE(sim::fluidEnabled());
        }
        EXPECT_EQ(sim::fluidMode(), FluidMode::On);
    }
    EXPECT_EQ(sim::fluidMode(), FluidMode::Off);
    EXPECT_FALSE(sim::fluidEnabled());

    // The bool shim maps true/false onto On/Off.
    sim::setFluid(true);
    EXPECT_EQ(sim::fluidMode(), FluidMode::On);
    sim::setFluid(false);
    EXPECT_EQ(sim::fluidMode(), FluidMode::Off);
}

TEST(FluidDirector, ShiftSafeTagAllowlistIsExactAndClosed)
{
    using core::FluidDirector;
    // Tags whose pending events a warp may shift: closures capturing
    // only owner pointers/indices.
    for (const char *tag : {"cpu.done", "wire.burst", "netperf.emit",
                            "netperf.rto", "netperf.sample", "nic.itr",
                            "driver.itr_sample"})
        EXPECT_TRUE(FluidDirector::shiftSafeTag(tag)) << tag;
    // Everything else must reject the cycle — especially the
    // per-packet capture carriers.
    for (const char *tag :
         {"dma.done", "netback.batch", "wire.exact", "", "unknown"})
        EXPECT_FALSE(FluidDirector::shiftSafeTag(tag)) << tag;
}

// ---------------------------------------------------------------------
// The equivalence contract on a live testbed
// ---------------------------------------------------------------------

namespace {

struct RunResult
{
    double goodput_bps = 0;
    std::uint64_t segments = 0;
    Time warped;
};

/** A small 2-VM SR-IOV testbed driven for 4 simulated seconds. */
RunResult
runSmallTestbed(FluidMode mode)
{
    sim::FluidScope scope(mode);
    core::Testbed::Params p;
    p.num_ports = 1;
    p.itr = "adaptive";
    core::Testbed tb(p);
    for (unsigned i = 0; i < 2; ++i) {
        auto &g = tb.addGuest(vmm::DomainType::Hvm,
                              core::Testbed::NetMode::Sriov);
        tb.startUdpToGuest(g, p.line_bps / 2);
    }
    auto m = tb.measure(sim::Time::sec(1), sim::Time::sec(3));
    RunResult r;
    r.goodput_bps = m.total_goodput_bps;
    if (const sim::FluidStats *fs = tb.fluidStats()) {
        r.segments = fs->segments;
        r.warped = fs->warped;
    }
    return r;
}

} // namespace

TEST(FluidEquivalence, WarpedRunMatchesExactScheduleByteForByte)
{
    RunResult exact = runSmallTestbed(FluidMode::Exact);
    RunResult on = runSmallTestbed(FluidMode::On);

    // Exact never warps; On must actually exercise the machinery.
    EXPECT_EQ(exact.segments, 0u);
    ASSERT_GT(on.segments, 0u);
    EXPECT_GT(on.warped, sim::Time::sec(1));

    // One shared schedule: goodput is bytes/seconds with integer
    // bytes, so the doubles must be identical, not merely close.
    EXPECT_EQ(exact.goodput_bps, on.goodput_bps);
}

TEST(FluidEquivalence, OffModeInstallsNothing)
{
    sim::FluidScope scope(FluidMode::Off);
    core::Testbed::Params p;
    p.num_ports = 1;
    core::Testbed tb(p);
    EXPECT_EQ(tb.fluidDirector(), nullptr);
    EXPECT_EQ(sim::fluidLedger(), nullptr);
}
