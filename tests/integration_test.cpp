/**
 * @file
 * End-to-end integration tests through the full testbed: these assert
 * the qualitative claims of the paper's evaluation, so a regression
 * in any layer (NIC model, interrupt path, cost accounting, drivers)
 * shows up as a broken paper property.
 */

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metric.hpp"
#include "obs/pathtrace.hpp"
#include "obs/profiler.hpp"
#include "sim/log.hpp"
#include "sim/thinning.hpp"

using namespace sriov;
using namespace sriov::core;

namespace {

struct QuietLogs
{
    QuietLogs() { sim::setLogLevel(sim::LogLevel::Quiet); }
};
QuietLogs quiet_logs;

} // namespace

TEST(Integration, SriovGuestReachesLineRate)
{
    Testbed::Params p;
    p.num_ports = 1;
    p.opts = OptimizationSet::all();
    Testbed tb(p);
    auto &g = tb.addGuest(vmm::DomainType::Hvm, Testbed::NetMode::Sriov);
    tb.startUdpToGuest(g, 1e9);
    auto m = tb.measure(sim::Time::sec(1), sim::Time::sec(3));
    // 957 Mb/s of goodput on a saturated 1 GbE line.
    EXPECT_NEAR(m.total_goodput_bps / 1e6, 957, 15);
    // The datapath bypasses dom0 entirely.
    EXPECT_LT(m.dom0_pct, 1.0);
}

TEST(Integration, MaskUnmaskAccelSlashesDom0)
{
    auto run = [](bool accel) {
        Testbed::Params p;
        p.num_ports = 1;
        p.itr = "adaptive";
        p.opts = accel ? OptimizationSet::maskOnly()
                       : OptimizationSet::none();
        Testbed tb(p);
        auto &g = tb.addGuest(vmm::DomainType::Hvm,
                              Testbed::NetMode::Sriov,
                              guest::KernelVersion::v2_6_18);
        tb.startUdpToGuest(g, 1e9);
        return tb.measure(sim::Time::sec(1), sim::Time::sec(3));
    };
    auto unopt = run(false);
    auto opt = run(true);
    // Paper Fig. 6: ~17% -> ~3%.
    EXPECT_GT(unopt.dom0_pct, 10.0);
    EXPECT_LT(opt.dom0_pct, 3.0);
    EXPECT_NEAR(unopt.total_goodput_bps, opt.total_goodput_bps, 20e6);
}

TEST(Integration, EoiAccelReducesXenOverhead)
{
    auto run = [](bool accel) {
        Testbed::Params p;
        p.num_ports = 1;
        p.itr = "adaptive";
        p.opts = accel ? OptimizationSet::maskEoi()
                       : OptimizationSet::maskOnly();
        Testbed tb(p);
        auto &g = tb.addGuest(vmm::DomainType::Hvm,
                              Testbed::NetMode::Sriov);
        tb.startUdpToGuest(g, 1e9);
        return tb.measure(sim::Time::sec(1), sim::Time::sec(3));
    };
    auto before = run(false);
    auto after = run(true);
    EXPECT_LT(after.xen_pct, before.xen_pct * 0.85);
}

TEST(Integration, AicAvoidsInterVmLossWhereFixedRatesDrop)
{
    auto run = [](const std::string &policy) {
        Testbed::Params p;
        p.num_ports = 1;
        p.opts = OptimizationSet::maskEoi();
        p.opts.aic = policy == "AIC";
        p.itr = policy;
        Testbed tb(p);
        auto &g = tb.addGuest(vmm::DomainType::Hvm,
                              Testbed::NetMode::Sriov);
        tb.startUdpFromDom0(g, 2e9);
        auto m = tb.measure(sim::Time::sec(2), sim::Time::sec(3));
        return m.total_goodput_bps;
    };
    double rx_1k = run("1kHz");
    double rx_aic = run("AIC");
    // At 2 Gb/s offered, 1 kHz overflows the 64-packet socket buffer;
    // AIC adapts and keeps (nearly) everything.
    EXPECT_GT(rx_aic, rx_1k * 1.2);
}

TEST(Integration, TcpIsLatencySensitiveAt1kHz)
{
    auto run = [](const std::string &policy) {
        Testbed::Params p;
        p.num_ports = 1;
        p.opts = OptimizationSet::maskEoi();
        p.itr = policy;
        Testbed tb(p);
        auto &g = tb.addGuest(vmm::DomainType::Hvm,
                              Testbed::NetMode::Sriov);
        tb.startTcpToGuest(g);
        auto m = tb.measure(sim::Time::sec(2), sim::Time::sec(3));
        return m.total_goodput_bps;
    };
    double bw_2k = run("2kHz");
    double bw_1k = run("1kHz");
    EXPECT_NEAR(bw_2k / 1e6, 941, 25);
    // Paper: -9.6% at 1 kHz.
    double drop = (bw_2k - bw_1k) / bw_2k;
    EXPECT_GT(drop, 0.04);
    EXPECT_LT(drop, 0.25);
}

TEST(Integration, SingleThreadNetbackSaturatesNear3p6Gbps)
{
    Testbed::Params p;
    p.num_ports = 10;
    p.opts = OptimizationSet::maskEoi();
    p.netback_threads = 1;
    Testbed tb(p);
    for (unsigned i = 0; i < 10; ++i) {
        auto &g = tb.addGuest(vmm::DomainType::Hvm, Testbed::NetMode::Pv);
        tb.startUdpToGuest(g, 1e9);
    }
    auto m = tb.measure(sim::Time::sec(2), sim::Time::sec(3));
    EXPECT_NEAR(m.total_goodput_bps / 1e9, 3.6, 0.5);
}

TEST(Integration, SriovScalesWherePvDoesNot)
{
    auto run = [](Testbed::NetMode mode) {
        Testbed::Params p;
        p.num_ports = 10;
        p.opts = OptimizationSet::maskEoi();
        p.netback_threads = 4;
        Testbed tb(p);
        for (unsigned i = 0; i < 20; ++i)
            tb.addGuest(vmm::DomainType::Hvm, mode);
        for (unsigned i = 0; i < 20; ++i)
            tb.startUdpToGuest(tb.guest(i), 0.5e9);
        return tb.measure(sim::Time::sec(2), sim::Time::sec(3));
    };
    auto sriov = run(Testbed::NetMode::Sriov);
    auto pv = run(Testbed::NetMode::Pv);
    EXPECT_NEAR(sriov.total_goodput_bps / 1e9, 9.57, 0.3);
    EXPECT_LT(pv.total_goodput_bps, sriov.total_goodput_bps);
    EXPECT_GT(pv.dom0_pct, sriov.dom0_pct + 50.0);
}

TEST(Integration, HvmCostsMorePerVmThanPvmAtScale)
{
    auto run = [](vmm::DomainType type, unsigned vms) {
        Testbed::Params p;
        p.num_ports = 10;
        p.opts = OptimizationSet::maskEoi();
        p.itr = "adaptive";
        Testbed tb(p);
        for (unsigned i = 0; i < vms; ++i)
            tb.addGuest(type, Testbed::NetMode::Sriov);
        for (unsigned i = 0; i < vms; ++i)
            tb.startUdpToGuest(tb.guest(i), 1e10 / vms);
        auto m = tb.measure(sim::Time::sec(2), sim::Time::sec(3));
        return m.total_pct;
    };
    // Slopes from 20 to 40 VMs (throughput constant, only the per-VM
    // fixed costs grow).
    double hvm = (run(vmm::DomainType::Hvm, 40)
                  - run(vmm::DomainType::Hvm, 20))
        / 20.0;
    double pvm = (run(vmm::DomainType::Pvm, 40)
                  - run(vmm::DomainType::Pvm, 20))
        / 20.0;
    EXPECT_GT(hvm, pvm);    // paper: 2.8% vs 1.76% per VM
    EXPECT_GT(pvm, 0.0);
}

TEST(Integration, VmdqFallsBackBeyondSevenGuests)
{
    Testbed::Params p;
    p.use_vmdq_nic = true;
    p.opts = OptimizationSet::maskEoi();
    p.netback_threads = 4;
    Testbed tb(p);
    for (unsigned i = 0; i < 10; ++i)
        tb.addGuest(vmm::DomainType::Pvm, Testbed::NetMode::Vmdq);
    EXPECT_EQ(tb.vmdqBackend().queuesInUse(), 7u);
    for (unsigned i = 0; i < 10; ++i)
        tb.startUdpToGuest(tb.guest(i), 1e9);
    auto m = tb.measure(sim::Time::sec(2), sim::Time::sec(3));
    EXPECT_GT(m.total_goodput_bps, 4e9);
    // The three fallback guests ride the copying bridge.
    EXPECT_GT(tb.netback(0).copies(), 0u);
}

TEST(Integration, InterVmSriovIsPcieBoundNotLineBound)
{
    Testbed::Params p;
    p.num_ports = 1;
    p.opts = OptimizationSet::all();
    Testbed tb(p);
    auto &tx = tb.addGuest(vmm::DomainType::Hvm, Testbed::NetMode::Sriov);
    auto &rx = tb.addGuest(vmm::DomainType::Hvm, Testbed::NetMode::Sriov);
    tb.startUdpGuestToGuest(tx, rx, 6e9, 4000);
    auto m = tb.measure(sim::Time::sec(1), sim::Time::sec(3));
    // Above the 1 GbE line rate (internal switch), below the line's
    // 10x: bounded by the double PCIe crossing near 2.8 Gb/s.
    EXPECT_GT(m.total_goodput_bps / 1e9, 1.5);
    EXPECT_LT(m.total_goodput_bps / 1e9, 4.0);
}

TEST(Integration, NativeBaselineMatchesPaperCpu)
{
    Testbed::Params p;
    p.num_ports = 10;
    p.itr = "adaptive";
    Testbed tb(p);
    for (unsigned i = 0; i < 10; ++i) {
        auto &g = tb.addGuest(vmm::DomainType::Native,
                              Testbed::NetMode::Sriov);
        tb.startUdpToGuest(g, 1e9);
    }
    auto m = tb.measure(sim::Time::sec(2), sim::Time::sec(3));
    EXPECT_NEAR(m.total_goodput_bps / 1e9, 9.57, 0.2);
    // Paper Fig. 12: native ~145% for the ten flows.
    EXPECT_NEAR(m.total_pct, 145, 30);
    EXPECT_DOUBLE_EQ(m.xen_pct, 0.0);
}

TEST(Integration, ObsHistogramsTrackCostModelConstants)
{
    Testbed::Params p;
    p.num_ports = 1;
    p.itr = "adaptive";
    p.opts = OptimizationSet::none();
    Testbed tb(p);
    auto &hooks = tb.enableObs();
    auto &g = tb.addGuest(vmm::DomainType::Hvm, Testbed::NetMode::Sriov,
                          guest::KernelVersion::v2_6_18);
    tb.startUdpToGuest(g, 1e9);
    tb.measure(sim::Time::sec(1), sim::Time::sec(2));

    const vmm::CostModel &cm = tb.server().costs();
    // Without EOI acceleration every APIC access pays the full
    // fetch-decode-emulate exit, so the distribution collapses to a
    // single point at apic_access_emulate.
    const obs::Histogram &apic = hooks.exitCost(vmm::ExitReason::ApicAccess);
    ASSERT_GT(apic.count(), 100);
    EXPECT_DOUBLE_EQ(apic.percentile(50), cm.apic_access_emulate);
    EXPECT_DOUBLE_EQ(apic.percentile(99), cm.apic_access_emulate);

    const obs::Histogram &ext =
        hooks.exitCost(vmm::ExitReason::ExternalInterrupt);
    ASSERT_GT(ext.count(), 0);
    EXPECT_DOUBLE_EQ(ext.percentile(50), cm.extint_exit);
    EXPECT_DOUBLE_EQ(ext.percentile(99), cm.extint_exit);

    // Uncontended direct injection delivers at raise time: the latency
    // histogram is populated, and every sample is zero.
    const obs::Histogram &lat = hooks.intr_latency_us;
    ASSERT_GT(lat.count(), 100);
    EXPECT_DOUBLE_EQ(lat.max(), 0.0);
}

TEST(Integration, IntrLatencyHistogramSeesEoiDeferral)
{
    // Make the guest's per-interrupt work (500 us) outrun the fixed
    // 20 kHz ITR window (50 us): every subsequent raise lands while the
    // previous vector is still in service, so delivery is deferred to
    // EOI and the latency histogram fills with positive samples bounded
    // below by (irq work - ITR window).
    Testbed::Params p;
    p.num_ports = 1;
    p.itr = "20kHz";
    p.opts = OptimizationSet::maskEoi();
    p.costs.guest_irq_entry = 1.4e6;
    Testbed tb(p);
    auto &hooks = tb.enableObs();
    auto &g = tb.addGuest(vmm::DomainType::Hvm, Testbed::NetMode::Sriov);
    tb.startUdpToGuest(g, 1e9);
    tb.measure(sim::Time::ms(200), sim::Time::ms(300));

    const vmm::CostModel &cm = tb.server().costs();
    double work_us = cm.guest_irq_entry / cm.cpu_hz * 1e6;
    double itr_us = 1e6 / 20e3;
    const obs::Histogram &lat = hooks.intr_latency_us;
    ASSERT_GT(lat.count(), 100);
    EXPECT_GE(lat.percentile(50), work_us - itr_us);
    EXPECT_GE(lat.percentile(99), lat.percentile(50));
    EXPECT_LE(lat.percentile(99), 2 * work_us);
}

TEST(Integration, ObservabilityDoesNotPerturbDeterminism)
{
    auto run = [](bool obs_on) {
        Testbed::Params p;
        p.num_ports = 1;
        p.opts = OptimizationSet::all();
        Testbed tb(p);
        obs::MetricRegistry reg;
        obs::SimProfiler prof;
        obs::ChromeTraceWriter trace;
        if (obs_on) {
            tb.enableObs();
            tb.registerMetrics(reg);
            prof.attach(tb.eq());
            tb.attachObsTrace(trace);
        }
        auto &g = tb.addGuest(vmm::DomainType::Hvm,
                              Testbed::NetMode::Sriov);
        tb.startUdpToGuest(g, 1e9);
        auto m = tb.measure(sim::Time::sec(1), sim::Time::sec(2));
        trace.detachAll();
        prof.detach();
        struct R
        {
            std::uint64_t digest;
            std::uint64_t executed;
            double goodput;
        };
        return R{tb.eq().orderDigest(), tb.eq().executed(),
                 m.total_goodput_bps};
    };
    auto off = run(false);
    auto on = run(true);
    // The whole obs layer is a bystander: same event order, same event
    // count, same measured result, whether it watches or not.
    EXPECT_EQ(on.digest, off.digest);
    EXPECT_EQ(on.executed, off.executed);
    EXPECT_DOUBLE_EQ(on.goodput, off.goodput);
}

TEST(Integration, GoldenDigestFig06SmokeIsPinned)
{
    // Bit-for-bit regression pin for the event-order digest: this is
    // the fig06 determinism-smoke workload (2 HVM guests, SR-IOV,
    // mask/unmask acceleration, 300 Mb/s UDP each, 200 ms). The value
    // is a pure function of the executed (when, seq, tag) sequence, so
    // any queue-internals change that alters it has reordered the
    // simulation. Re-pinned for the event-thinning layer (burst
    // wire delivery, DMA flow-through, deferred timers): the thinned
    // schedule executes ~40% fewer events by design, and the
    // thin-vs-exact equivalence is asserted on metric snapshots (see
    // ThinnedAndExactModesAgree), not on the digest.
    constexpr std::uint64_t kGoldenDigest = 0x113b495c442c4754ull;
    constexpr std::uint64_t kGoldenEvents = 44041;

    Testbed::Params p;
    p.num_ports = 1;
    p.opts = OptimizationSet::maskOnly();
    Testbed tb(p);
    for (unsigned i = 0; i < 2; ++i) {
        auto &g = tb.addGuest(vmm::DomainType::Hvm, Testbed::NetMode::Sriov,
                              guest::KernelVersion::v2_6_18);
        tb.startUdpToGuest(g, 300e6);
    }
    tb.run(sim::Time::ms(200));
    EXPECT_EQ(tb.eq().orderDigest(), kGoldenDigest);
    EXPECT_EQ(tb.eq().executed(), kGoldenEvents);
}

TEST(Integration, PathTracingNeverPerturbsTheGoldenRun)
{
    // The path tracer's non-perturbation contract, held against the
    // same pinned workload as GoldenDigestFig06SmokeIsPinned: with
    // tracing off, sampled or full, the event-order digest, event
    // count and every registered metric are identical. The tracer may
    // only observe — it never schedules, never touches a metric, and
    // samples by a pure hash of the trace id.
    constexpr std::uint64_t kGoldenDigest = 0x113b495c442c4754ull;
    constexpr std::uint64_t kGoldenEvents = 44041;

    auto run = [](obs::PathTraceMode mode) {
        obs::PathTraceScope scope(mode);
        Testbed::Params p;
        p.num_ports = 1;
        p.opts = OptimizationSet::maskOnly();
        Testbed tb(p);
        obs::MetricRegistry reg;
        tb.enableObs();
        tb.registerMetrics(reg);
        for (unsigned i = 0; i < 2; ++i) {
            auto &g = tb.addGuest(vmm::DomainType::Hvm,
                                  Testbed::NetMode::Sriov,
                                  guest::KernelVersion::v2_6_18);
            tb.startUdpToGuest(g, 300e6);
        }
        tb.run(sim::Time::ms(200));
        struct R
        {
            std::uint64_t digest;
            std::uint64_t executed;
            obs::MetricSnapshot snap;
            obs::PathSnapshot path;
        };
        return R{tb.eq().orderDigest(), tb.eq().executed(),
                 reg.snapshot(), tb.pathTracer().snapshot()};
    };

    auto off = run(obs::PathTraceMode::Off);
    auto sampled = run(obs::PathTraceMode::Sampled);
    auto full = run(obs::PathTraceMode::Full);

    for (const auto *r : {&off, &sampled, &full}) {
        EXPECT_EQ(r->digest, kGoldenDigest);
        EXPECT_EQ(r->executed, kGoldenEvents);
    }
    for (const auto *r : {&sampled, &full}) {
        ASSERT_EQ(r->snap.samples.size(), off.snap.samples.size());
        for (std::size_t i = 0; i < off.snap.samples.size(); ++i) {
            const obs::MetricSample &a = off.snap.samples[i];
            const obs::MetricSample &b = r->snap.samples[i];
            EXPECT_EQ(a.name, b.name);
            EXPECT_EQ(a.value, b.value) << a.name;
            EXPECT_EQ(a.count, b.count) << a.name;
            EXPECT_EQ(a.p50, b.p50) << a.name;
            EXPECT_EQ(a.p99, b.p99) << a.name;
        }
    }

    // Attribution runs at the fixed base rate in every mode, so the
    // path_stages block a report would carry is mode-invariant too.
    EXPECT_TRUE(off.path.hasAttribution());
    for (const auto *r : {&sampled, &full}) {
        EXPECT_EQ(r->path.completed, off.path.completed);
        EXPECT_EQ(r->path.origin_sampled, off.path.origin_sampled);
        ASSERT_EQ(r->path.stages.size(), off.path.stages.size());
        for (std::size_t i = 0; i < off.path.stages.size(); ++i) {
            EXPECT_EQ(r->path.stages[i].stage, off.path.stages[i].stage);
            EXPECT_EQ(r->path.stages[i].count, off.path.stages[i].count);
            EXPECT_EQ(r->path.stages[i].p50_us,
                      off.path.stages[i].p50_us);
            EXPECT_EQ(r->path.stages[i].p99_us,
                      off.path.stages[i].p99_us);
        }
        EXPECT_EQ(r->path.total.mean_us, off.path.total.mean_us);
    }
    // Wider export can only widen the rings, never shrink them.
    auto pushes = [](const obs::PathSnapshot &s) {
        std::uint64_t n = 0;
        for (const obs::PathCompDump &c : s.comps)
            n += c.written;
        return n;
    };
    EXPECT_GT(pushes(full.path), pushes(sampled.path));
    EXPECT_GT(pushes(sampled.path), pushes(off.path));
}

TEST(Integration, ThinnedAndExactModesAgree)
{
    // The event-thinning contract: every registered metric mutates at
    // the same simulated instant in both modes, so *mid-run* registry
    // snapshots — not just quiescent ones — are identical. The
    // workload crosses every thinned component: burst wire delivery,
    // DMA flow-through RX/TX, the lazy ITR window, the deferred RTO,
    // and the driver's ITR-retune sampler.
    auto run = [](bool thin) {
        sim::ThinningScope scope(thin);
        Testbed::Params p;
        p.num_ports = 1;
        p.opts = OptimizationSet::all();
        Testbed tb(p);
        obs::MetricRegistry reg;
        tb.enableObs();
        tb.registerMetrics(reg);
        auto &u1 = tb.addGuest(vmm::DomainType::Hvm,
                               Testbed::NetMode::Sriov);
        auto &u2 = tb.addGuest(vmm::DomainType::Hvm,
                               Testbed::NetMode::Sriov);
        tb.startUdpToGuest(u1, 600e6);
        tb.startTcpToGuest(u2);
        std::vector<obs::MetricSnapshot> snaps;
        // Snapshot at instants that do not line up with any window or
        // RTO boundary, so ledgered stats must settle mid-flight.
        for (sim::Time t : {sim::Time::ms(73), sim::Time::ms(151),
                            sim::Time::ms(260)}) {
            tb.eq().runUntil(t);
            snaps.push_back(reg.snapshot());
        }
        return snaps;
    };
    auto thin = run(true);
    auto exact = run(false);
    ASSERT_EQ(thin.size(), exact.size());
    for (std::size_t s = 0; s < thin.size(); ++s) {
        ASSERT_EQ(thin[s].samples.size(), exact[s].samples.size());
        for (std::size_t i = 0; i < thin[s].samples.size(); ++i) {
            const obs::MetricSample &a = thin[s].samples[i];
            const obs::MetricSample &b = exact[s].samples[i];
            EXPECT_EQ(a.name, b.name);
            EXPECT_EQ(a.value, b.value) << "snapshot " << s << ": "
                                        << a.name;
            EXPECT_EQ(a.count, b.count) << a.name;
            EXPECT_EQ(a.p50, b.p50) << a.name;
            EXPECT_EQ(a.p99, b.p99) << a.name;
        }
    }
}

TEST(Integration, BothModesAreDeterministic)
{
    // Run-twice determinism in each mode: identical digests, event
    // counts and goodput. (The two modes legitimately differ from each
    // other — thinning is the point — but each must be reproducible.)
    auto run = [](bool thin) {
        sim::ThinningScope scope(thin);
        Testbed::Params p;
        p.num_ports = 1;
        p.opts = OptimizationSet::all();
        Testbed tb(p);
        auto &g = tb.addGuest(vmm::DomainType::Hvm,
                              Testbed::NetMode::Sriov);
        tb.startUdpToGuest(g, 1e9);
        auto m = tb.measure(sim::Time::ms(100), sim::Time::ms(200));
        struct R
        {
            std::uint64_t digest;
            std::uint64_t executed;
            double goodput;
        };
        return R{tb.eq().orderDigest(), tb.eq().executed(),
                 m.total_goodput_bps};
    };
    for (bool thin : {true, false}) {
        auto a = run(thin);
        auto b = run(thin);
        EXPECT_EQ(a.digest, b.digest);
        EXPECT_EQ(a.executed, b.executed);
        EXPECT_DOUBLE_EQ(a.goodput, b.goodput);
    }
}
