/**
 * @file
 * Unit tests for the simulation kernel: Time, EventQueue, CpuServer,
 * stats helpers and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <array>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

#include "sim/cpu_server.hpp"
#include "sim/deferred_timer.hpp"
#include "sim/event_queue.hpp"
#include "sim/inplace_fn.hpp"
#include "sim/random.hpp"
#include "sim/ring_buf.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

using namespace sriov::sim;

TEST(Time, UnitConstructorsAgree)
{
    EXPECT_EQ(Time::ns(1).picos(), 1000);
    EXPECT_EQ(Time::us(1), Time::ns(1000));
    EXPECT_EQ(Time::ms(1), Time::us(1000));
    EXPECT_EQ(Time::sec(1), Time::ms(1000));
    EXPECT_DOUBLE_EQ(Time::sec(2).toSeconds(), 2.0);
}

TEST(Time, CycleArithmeticAt2p8GHz)
{
    constexpr double hz = 2.8e9;
    Time t = Time::cycles(2.8e9, hz);
    EXPECT_EQ(t, Time::sec(1));
    EXPECT_NEAR(Time::sec(1).toCycles(hz), 2.8e9, 1);
    // One cycle is 357.14 ps; integer picoseconds keep it exact enough
    // that a million cycles round-trips to under a nanosecond of skew.
    Time million = Time::cycles(1e6, hz);
    EXPECT_NEAR(million.toCycles(hz), 1e6, 0.01);
}

TEST(Time, TransferMatchesLineRate)
{
    // 1538 bytes at 1 Gb/s = 12.304 us.
    Time t = Time::transfer(1538 * 8, 1e9);
    EXPECT_EQ(t, Time::ns(12304));
}

TEST(Time, ComparisonAndArithmetic)
{
    EXPECT_LT(Time::ns(5), Time::us(1));
    EXPECT_EQ(Time::us(3) - Time::us(1), Time::us(2));
    EXPECT_EQ(Time::us(1) * 4, Time::us(4));
    EXPECT_EQ(Time::us(4) / 2, Time::us(2));
}

TEST(Time, ToStringPicksUnits)
{
    EXPECT_EQ(Time::sec(2).toString(), "2s");
    EXPECT_EQ(Time::ms(3).toString(), "3ms");
    EXPECT_EQ(Time::us(7).toString(), "7us");
    EXPECT_EQ(Time::ns(9).toString(), "9ns");
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(Time::us(3), [&order]() { order.push_back(3); });
    eq.scheduleAt(Time::us(1), [&order]() { order.push_back(1); });
    eq.scheduleAt(Time::us(2), [&order]() { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), Time::us(3));
}

TEST(EventQueue, SimultaneousEventsAreFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.scheduleAt(Time::us(1), [&order, i]() { order.push_back(i); });
    eq.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(EventQueue, RunUntilStopsAtDeadline)
{
    EventQueue eq;
    int ran = 0;
    eq.scheduleAt(Time::us(1), [&ran]() { ++ran; });
    eq.scheduleAt(Time::us(10), [&ran]() { ++ran; });
    EXPECT_EQ(eq.runUntil(Time::us(5)), 1u);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(eq.now(), Time::us(5));
    eq.runAll();
    EXPECT_EQ(ran, 2);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 5)
            eq.scheduleIn(Time::us(1), chain);
    };
    eq.scheduleIn(Time::us(1), chain);
    eq.runAll();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), Time::us(5));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    EventHandle h = eq.scheduleAt(Time::us(1), [&ran]() { ran = true; });
    eq.cancel(h);
    EXPECT_FALSE(h.valid());
    eq.runAll();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelIsSelective)
{
    EventQueue eq;
    int ran = 0;
    EventHandle h1 = eq.scheduleAt(Time::us(1), [&ran]() { ran += 1; });
    eq.scheduleAt(Time::us(1), [&ran]() { ran += 10; });
    eq.cancel(h1);
    eq.runAll();
    EXPECT_EQ(ran, 10);
}

TEST(EventQueue, CancelBookkeepingIsPurgedOnPop)
{
    EventQueue eq;
    EventHandle h = eq.scheduleAt(Time::us(1), []() {});
    eq.scheduleAt(Time::us(2), []() {});
    eq.cancel(h);
    EXPECT_EQ(eq.cancelledPending(), 1u);
    eq.runAll();
    // The cancelled entry was popped and its bookkeeping purged.
    EXPECT_EQ(eq.cancelledPending(), 0u);
}

TEST(EventQueue, CancellingStaleHandlesDoesNotAccumulate)
{
    // Regression: long-running scale experiments (fig15-fig19) cancel
    // throttle timers whose events often fired long ago; the stale
    // cancellations must not grow the bookkeeping unboundedly.
    EventQueue eq;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 1000; ++i)
        handles.push_back(eq.scheduleIn(Time::us(i), []() {}));
    eq.runAll();
    for (auto &h : handles)
        eq.cancel(h);    // all stale: every event already fired
    EXPECT_EQ(eq.cancelledPending(), 0u);
}

TEST(EventQueue, CancelledEventsDoNotCountAsLive)
{
    EventQueue eq;
    EventHandle h = eq.scheduleAt(Time::us(1), []() {});
    EXPECT_EQ(eq.liveEvents(), 1u);
    EXPECT_FALSE(eq.empty());
    eq.cancel(h);
    EXPECT_EQ(eq.liveEvents(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunUntilIgnoresCancelledTopBeyondDeadline)
{
    // Regression: a cancelled event at the heap top must not let
    // runUntil() execute the *next* event past the deadline.
    EventQueue eq;
    bool late_ran = false;
    EventHandle h = eq.scheduleAt(Time::us(1), []() {});
    eq.scheduleAt(Time::us(10), [&late_ran]() { late_ran = true; });
    eq.cancel(h);
    EXPECT_EQ(eq.runUntil(Time::us(5)), 0u);
    EXPECT_FALSE(late_ran);
    EXPECT_EQ(eq.now(), Time::us(5));
    eq.runAll();
    EXPECT_TRUE(late_ran);
}

TEST(EventQueue, OrderDigestIsReproducible)
{
    auto run = []() {
        EventQueue eq;
        for (int i = 0; i < 50; ++i)
            eq.scheduleAt(Time::us(50 - i), []() {}, "tick");
        eq.runAll();
        return eq.orderDigest();
    };
    std::uint64_t a = run();
    EXPECT_EQ(a, run());

    EventQueue other;
    other.scheduleAt(Time::us(1), []() {}, "tick");
    other.runAll();
    EXPECT_NE(a, other.orderDigest());
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.scheduleAt(Time::us(5), []() {});
    eq.runAll();
    EXPECT_DEATH(eq.scheduleAt(Time::us(1), []() {}), "past");
}

TEST(CpuServer, SerializesWork)
{
    EventQueue eq;
    CpuServer cpu(eq, "c0", 1e9);    // 1 GHz: 1 cycle = 1 ns
    std::vector<int> order;
    cpu.submit(1000, "a", [&]() { order.push_back(1); });
    cpu.submit(1000, "a", [&]() { order.push_back(2); });
    EXPECT_TRUE(cpu.busyNow());
    EXPECT_EQ(cpu.queueDepth(), 1u);
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    // Two back-to-back 1000-cycle items finish at 2 us.
    EXPECT_EQ(eq.now(), Time::us(2));
}

TEST(CpuServer, UtilizationWindow)
{
    EventQueue eq;
    CpuServer cpu(eq, "c0", 1e9);
    auto snap = cpu.snapshot();
    cpu.submit(500000, "x");    // 0.5 ms busy
    eq.runUntil(Time::ms(1));
    EXPECT_NEAR(cpu.utilizationSince(snap), 0.5, 1e-9);
}

TEST(CpuServer, TagAccounting)
{
    EventQueue eq;
    CpuServer cpu(eq, "c0", 1e9);
    auto snap = cpu.snapshot();
    cpu.submit(100, "alpha");
    cpu.charge(250, "beta");
    cpu.charge(50, "alpha");
    eq.runAll();
    EXPECT_DOUBLE_EQ(cpu.cyclesSince(snap, "alpha"), 150.0);
    EXPECT_DOUBLE_EQ(cpu.cyclesSince(snap, "beta"), 250.0);
    EXPECT_DOUBLE_EQ(cpu.cyclesSince(snap, "gamma"), 0.0);
}

TEST(CpuServer, ChargeDoesNotDelayCompletion)
{
    EventQueue eq;
    CpuServer cpu(eq, "c0", 1e9);
    cpu.charge(1e9, "heavy");    // instant accounting
    bool done = false;
    cpu.submit(10, "x", [&]() { done = true; });
    eq.runUntil(Time::us(1));
    EXPECT_TRUE(done);
    // Busy time reflects both, though.
    EXPECT_EQ(cpu.busyTime(), Time::sec(1) + Time::ns(10));
}

TEST(CpuServerDeathTest, NegativeWorkPanics)
{
    EventQueue eq;
    CpuServer cpu(eq, "c0", 1e9);
    EXPECT_DEATH(cpu.submit(-1, "x"), "negative");
    EXPECT_DEATH(cpu.charge(-1, "x"), "negative");
}

TEST(Stats, RateWindow)
{
    EventQueue eq;
    RateWindow w;
    w.take(eq.now());
    w.add(1000);
    eq.runUntil(Time::sec(2));
    EXPECT_DOUBLE_EQ(w.take(eq.now()), 500.0);
    // Window re-marks: nothing new means zero.
    eq.runUntil(Time::sec(3));
    EXPECT_DOUBLE_EQ(w.take(eq.now()), 0.0);
}

TEST(Stats, RateWindowZeroWidthDoesNotDiscard)
{
    RateWindow w;
    w.take(Time::sec(1));
    w.add(100);
    // Sampling again at the same instant (or earlier) yields 0 and
    // must NOT re-mark: the 100 stays in the open window.
    EXPECT_DOUBLE_EQ(w.take(Time::sec(1)), 0.0);
    EXPECT_DOUBLE_EQ(w.take(Time::ms(500)), 0.0);
    EXPECT_DOUBLE_EQ(w.take(Time::sec(2)), 100.0);
}

TEST(Trace, RingWraparoundCountsDrops)
{
    Tracer t(/*capacity=*/4);
    t.enable(TraceCat::Nic);
    for (int i = 0; i < 10; ++i)
        t.recordf(TraceCat::Nic, "r%d", i);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.totalRecorded(), 10u);
    EXPECT_EQ(t.droppedRecords(), 6u);
    // The ring keeps the NEWEST records.
    EXPECT_EQ(t.records().front().text, "r6");
    EXPECT_EQ(t.records().back().text, "r9");
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.droppedRecords(), 0u);
}

TEST(Trace, DisabledCategoryRecordsNothing)
{
    Tracer t;
    t.enable(TraceCat::Irq);
    t.record(TraceCat::Nic, "dropped");
    t.record(TraceCat::Irq, "kept");
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t.records().front().text, "kept");
}

TEST(Trace, GlobalClockAdoptedAndDisownedByQueue)
{
    auto &g = Tracer::global();
    const Time *before = g.clock();
    {
        EventQueue eq;
        const Time *bound = g.clock();
        // A fresh queue adopts the clock only when none is bound.
        if (before == nullptr)
            EXPECT_NE(bound, nullptr);
        else
            EXPECT_EQ(bound, before);
        {
            EventQueue second;
            // A second queue must not steal an existing binding...
            EXPECT_EQ(g.clock(), bound);
        }
        // ...and destroying it must not clear someone else's binding.
        EXPECT_EQ(g.clock(), bound);
    }
    // Regression for the dangling-clock hazard: after the owning queue
    // dies, the global tracer must not keep pointing into it.
    EXPECT_EQ(g.clock(), before);
}

TEST(Trace, RecordAfterQueueDestructionIsSafe)
{
    auto &g = Tracer::global();
    const Time *before = g.clock();
    if (before != nullptr)
        GTEST_SKIP() << "another queue owns the global clock";
    {
        EventQueue eq;
        eq.scheduleAt(Time::us(5), []() {});
        eq.runAll();
        g.enable(TraceCat::Irq);
        g.record(TraceCat::Irq, "live");
        EXPECT_EQ(g.records().back().when, Time::us(5));
    }
    // The queue is gone; recording must not touch freed memory and
    // timestamps degrade to 0.
    g.record(TraceCat::Irq, "after");
    EXPECT_EQ(g.records().back().when, Time());
    g.disable(TraceCat::Irq);
    g.clear();
}

namespace {

class CountingHook : public EventQueue::ExecHook
{
  public:
    void
    onEventStart(Time, std::uint64_t, const char *tag) override
    {
        ++starts;
        if (tag != nullptr && tag[0] != '\0')
            last_tag = tag;
    }
    void
    onEventEnd(Time when, std::uint64_t, const char *) override
    {
        ++ends;
        last_end = when;
    }

    int starts = 0;
    int ends = 0;
    std::string last_tag;
    Time last_end;
};

} // namespace

TEST(EventQueueHooks, BracketEveryExecutedEvent)
{
    EventQueue eq;
    CountingHook hook;
    eq.addExecHook(&hook);
    EXPECT_EQ(eq.execHookCount(), 1u);
    eq.scheduleAt(Time::us(1), []() {}, "alpha");
    eq.scheduleAt(Time::us(2), []() {});
    eq.runAll();
    EXPECT_EQ(hook.starts, 2);
    EXPECT_EQ(hook.ends, 2);
    EXPECT_EQ(hook.last_tag, "alpha");
    EXPECT_EQ(hook.last_end, Time::us(2));

    eq.removeExecHook(&hook);
    EXPECT_EQ(eq.execHookCount(), 0u);
    eq.scheduleAt(Time::us(3), []() {});
    eq.runAll();
    EXPECT_EQ(hook.starts, 2);
}

TEST(EventQueueHooks, HookDoesNotPerturbOrderOrClock)
{
    auto run = [](bool hooked) {
        EventQueue eq;
        CountingHook hook;
        if (hooked)
            eq.addExecHook(&hook);
        std::vector<int> order;
        for (int i = 0; i < 5; ++i)
            eq.scheduleAt(Time::us(5 - i), [&order, i]() {
                order.push_back(i);
            });
        eq.runAll();
        return order;
    };
    EXPECT_EQ(run(false), run(true));
}

namespace {

class RecordingTap : public CpuServer::SpanTap
{
  public:
    void
    onCpuSpan(const CpuServer &, const std::string &tag, Time start,
              Time end) override
    {
        spans.emplace_back(tag, end - start);
    }

    std::vector<std::pair<std::string, Time>> spans;
};

} // namespace

TEST(CpuServerSpanTap, ReportsWorkSpans)
{
    EventQueue eq;
    CpuServer cpu(eq, "c0", 1e9); // 1 GHz: 1 cycle = 1 ns
    RecordingTap tap;
    cpu.setSpanTap(&tap);
    cpu.submit(100, "guest-1");
    cpu.submit(50, "xen");
    eq.runAll();
    ASSERT_EQ(tap.spans.size(), 2u);
    EXPECT_EQ(tap.spans[0].first, "guest-1");
    EXPECT_EQ(tap.spans[0].second, Time::ns(100));
    EXPECT_EQ(tap.spans[1].first, "xen");
    EXPECT_EQ(tap.spans[1].second, Time::ns(50));

    cpu.setSpanTap(nullptr);
    cpu.submit(10, "dom0");
    eq.runAll();
    EXPECT_EQ(tap.spans.size(), 2u);
}

TEST(Stats, AccumulatorMean)
{
    Accumulator a;
    a.add(2);
    a.add(4);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.samples(), 2u);
}

TEST(Random, Deterministic)
{
    Random a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

class RandomDistribution : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomDistribution, UniformInUnitInterval)
{
    Random r(GetParam());
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST_P(RandomDistribution, ExponentialMean)
{
    Random r(GetParam());
    double sum = 0;
    for (int i = 0; i < 20000; ++i)
        sum += r.exponential(3.0);
    EXPECT_NEAR(sum / 20000, 3.0, 0.15);
}

TEST_P(RandomDistribution, UniformIntInRange)
{
    Random r(GetParam());
    for (int i = 0; i < 1000; ++i) {
        auto v = r.uniformInt(5, 9);
        ASSERT_GE(v, 5u);
        ASSERT_LE(v, 9u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDistribution,
                         ::testing::Values(1, 7, 42, 1234567, 0xdeadbeef));

// ---------------------------------------------------------------------------
// InplaceFn: the event queue's inline-capture callback type.

TEST(InplaceFn, SmallTrivialCaptureStoresInline)
{
    auto before = detail::capturePoolStats();
    int x = 41;
    InplaceFn fn([&x]() { ++x; });
    EXPECT_TRUE(fn.storedInline());
    fn();
    EXPECT_EQ(x, 42);
    auto after = detail::capturePoolStats();
    EXPECT_EQ(after.allocs, before.allocs);    // never touched the pool
}

TEST(InplaceFn, CaptureAtCapacityBoundaryStoresInline)
{
    struct Fits
    {
        char bytes[InplaceFn::kCapacity];
        void operator()() {}
    };
    struct Oversize
    {
        char bytes[InplaceFn::kCapacity + 1];
        void operator()() {}
    };
    EXPECT_TRUE(InplaceFn(Fits{}).storedInline());
    EXPECT_FALSE(InplaceFn(Oversize{}).storedInline());
}

TEST(InplaceFn, OversizedCaptureUsesPoolAndReturnsBlock)
{
    auto before = detail::capturePoolStats();
    {
        std::array<char, 200> big{};
        big[0] = 7;
        InplaceFn fn([big]() { ASSERT_EQ(big[0], 7); });
        EXPECT_FALSE(fn.storedInline());
        auto during = detail::capturePoolStats();
        EXPECT_EQ(during.live, before.live + 1);
        fn();
    }
    auto after = detail::capturePoolStats();
    EXPECT_EQ(after.live, before.live);
    EXPECT_EQ(after.frees, before.frees + 1);
}

TEST(InplaceFn, PoolReusesReturnedBlocks)
{
    // Warm the pool, then cycle: after the first allocation the same
    // size class must be served from the free list, not operator new.
    std::array<char, 300> big{};
    { InplaceFn warm([big]() {}); }
    auto before = detail::capturePoolStats();
    for (int i = 0; i < 100; ++i) {
        InplaceFn fn([big]() {});
        fn();
    }
    auto after = detail::capturePoolStats();
    EXPECT_EQ(after.allocs, before.allocs + 100);
    EXPECT_EQ(after.fresh, before.fresh);    // all reuses
}

TEST(InplaceFn, MoveTransfersCallableAndEmptiesSource)
{
    int hits = 0;
    InplaceFn a([&hits]() { ++hits; });
    InplaceFn b = std::move(a);
    EXPECT_FALSE(bool(a));    // NOLINT: post-move state is part of the API
    ASSERT_TRUE(bool(b));
    b();
    EXPECT_EQ(hits, 1);

    InplaceFn c;
    c = std::move(b);
    ASSERT_TRUE(bool(c));
    c();
    EXPECT_EQ(hits, 2);
}

TEST(InplaceFn, NonTrivialCaptureDestructsExactlyOnce)
{
    auto counter = std::make_shared<int>(0);
    {
        InplaceFn fn([counter]() { ++*counter; });
        EXPECT_EQ(counter.use_count(), 2);
        InplaceFn moved = std::move(fn);
        EXPECT_EQ(counter.use_count(), 2);    // moved, not copied
        moved();
    }
    EXPECT_EQ(counter.use_count(), 1);
    EXPECT_EQ(*counter, 1);
}

TEST(InplaceFn, EmplaceBuildsCaptureInPlace)
{
    int hits = 0;
    InplaceFn fn;
    EXPECT_FALSE(bool(fn));
    fn.emplace([&hits]() { ++hits; });
    ASSERT_TRUE(bool(fn));
    fn();
    EXPECT_EQ(hits, 1);
    // Re-emplacing replaces the old callable.
    fn.emplace([&hits]() { hits += 10; });
    fn();
    EXPECT_EQ(hits, 11);
}

// ---------------------------------------------------------------------------
// Slot-map cancellation: generation safety and churn behaviour.

TEST(EventQueue, StaleHandleCannotCancelSlotReuse)
{
    EventQueue eq;
    bool a = false, b = false;
    EventHandle ha = eq.scheduleIn(Time::ns(1), [&a]() { a = true; });
    eq.runAll();
    ASSERT_TRUE(a);
    // B reuses A's slot (freed on execution). The stale handle keeps
    // A's generation and must not cancel B.
    EventHandle hb = eq.scheduleIn(Time::ns(1), [&b]() { b = true; });
    EventHandle stale = ha;    // would-be double cancel via old copy
    (void)hb;
    eq.cancel(stale);
    eq.runAll();
    EXPECT_TRUE(b);
}

TEST(EventQueue, SelfCancelFromInsideCallbackIsNoOp)
{
    EventQueue eq;
    int runs = 0;
    EventHandle h;
    h = eq.scheduleIn(Time::ns(1), [&runs, &eq, &h]() {
        ++runs;
        eq.cancel(h);    // the event has already fired: no-op
    });
    eq.runAll();
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(eq.liveEvents(), 0u);
    EXPECT_EQ(eq.cancelledPending(), 0u);
}

TEST(EventQueue, MillionEventCancelChurnStaysBounded)
{
    // Scale-experiment pattern at 10x stress: every event re-arms a
    // timer and cancels the oldest outstanding one. Purging is lazy
    // (cancelled keys are reclaimed when they reach the heap top), so
    // the bound is per drain cycle: between drains the bookkeeping
    // never exceeds the events scheduled since the last drain, and
    // each drain — which pops every key at or before its deadline —
    // returns it to exactly zero. Live/executed accounting must
    // balance throughout.
    constexpr std::uint64_t kChurn = 1'000'000;
    constexpr std::uint64_t kWindow = 64;
    constexpr std::uint64_t kDrainEvery = 1024;
    EventQueue eq;
    std::vector<EventHandle> window;
    std::uint64_t fired = 0;
    for (std::uint64_t i = 0; i < kChurn; ++i) {
        window.push_back(
            eq.scheduleIn(Time::ns(100 + i % 37), [&fired]() { ++fired; }));
        if (window.size() > kWindow) {
            eq.cancel(window.front());
            window.erase(window.begin());
        }
        ASSERT_LE(eq.cancelledPending(), kDrainEvery + kWindow);
        if ((i + 1) % kDrainEvery == 0) {
            // The drain deadline is past every outstanding event, so
            // all cancelled keys pop and purge.
            eq.runUntil(eq.now() + Time::us(1));
            ASSERT_EQ(eq.cancelledPending(), 0u);
            window.clear();    // survivors fired; handles now stale
        }
    }
    eq.runAll();
    EXPECT_EQ(eq.liveEvents(), 0u);
    EXPECT_EQ(eq.cancelledPending(), 0u);
    EXPECT_EQ(eq.executed(), fired);
    // The churn genuinely exercised both outcomes.
    EXPECT_GT(fired, 0u);
    EXPECT_LT(fired, kChurn);
}

// ---------------------------------------------------------------------------
// Order digest: the memoized tag fold must match plain FNV-1a.

namespace {

/** Reference implementation: byte-wise FNV-1a over (when, seq, tag). */
struct ReferenceDigest
{
    std::uint64_t d = 0xcbf29ce484222325ull;

    void
    byte(std::uint8_t b)
    {
        d ^= b;
        d *= 0x100000001b3ull;
    }

    void
    event(Time when, std::uint64_t seq, const char *tag)
    {
        auto u64 = [this](std::uint64_t v) {
            for (int i = 0; i < 8; ++i)
                byte((v >> (8 * i)) & 0xff);
        };
        u64(std::uint64_t(when.picos()));
        u64(seq);
        if (tag != nullptr)
            for (const char *p = tag; *p != '\0'; ++p)
                byte(std::uint8_t(*p));
    }
};

} // namespace

TEST(EventQueue, DigestMatchesReferenceFnv1a)
{
    // Tags repeat (exercising the per-tag memo and its MRU slot),
    // interleave, and include the empty tag; seq is assigned in
    // scheduling order, execution order is (when, seq).
    static const char *const kTags[] = {"wire.rx", "cpu", "", "wire.rx",
                                        "itr.timer", "cpu", "wire.rx", ""};
    EventQueue eq;
    ReferenceDigest ref;
    std::uint64_t seq = 1;
    for (int round = 0; round < 50; ++round)
        for (std::size_t t = 0; t < std::size(kTags); ++t) {
            // All events of a round share a timestamp: FIFO by seq.
            Time when = Time::us(round + 1);
            eq.scheduleAt(when, []() {}, kTags[t]);
            ref.event(when, seq++, kTags[t]);
        }
    eq.runAll();
    EXPECT_EQ(eq.orderDigest(), ref.d);
}

TEST(EventQueue, DigestHashesTagContentNotPointer)
{
    // Two distinct arrays with equal content must fold identically:
    // the memo is keyed by pointer, but the digest is content-based.
    static const char tag_a[] = "same.tag";
    static const char tag_b[] = "same.tag";
    auto run = [](const char *tag) {
        EventQueue eq;
        for (int i = 0; i < 10; ++i)
            eq.scheduleIn(Time::ns(i), []() {}, tag);
        eq.runAll();
        return eq.orderDigest();
    };
    EXPECT_EQ(run(tag_a), run(tag_b));
}

TEST(RingBuf, FifoAcrossWraparound)
{
    RingBuf<int> rb(8);
    EXPECT_EQ(rb.capacity(), 8u);
    for (int i = 0; i < 6; ++i)
        rb.push_back(i);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(rb.front(), i);
        rb.pop_front();
    }
    // The next pushes wrap past the end of the array.
    for (int i = 6; i < 12; ++i)
        rb.push_back(i);
    EXPECT_EQ(rb.capacity(), 8u);    // exactly full, no growth
    ASSERT_EQ(rb.size(), 8u);
    for (std::size_t i = 0; i < rb.size(); ++i)
        EXPECT_EQ(rb[i], int(4 + i));
    EXPECT_EQ(rb.front(), 4);
    EXPECT_EQ(rb.back(), 11);
}

TEST(RingBuf, GrowthAtPowerOfTwoBoundariesPreservesOrder)
{
    RingBuf<int> rb;
    EXPECT_EQ(rb.capacity(), 0u);
    // Stagger the head so every regrow starts from a wrapped layout.
    for (int i = 0; i < 5; ++i)
        rb.push_back(-1);
    for (int i = 0; i < 5; ++i)
        rb.pop_front();
    int next = 0;
    for (std::size_t target : {std::size_t(8), std::size_t(16),
                               std::size_t(32), std::size_t(64)}) {
        while (rb.size() < target)
            rb.push_back(next++);
        EXPECT_EQ(rb.capacity(), target);
    }
    ASSERT_EQ(rb.size(), 64u);
    for (std::size_t i = 0; i < rb.size(); ++i)
        EXPECT_EQ(rb[i], int(i));
}

TEST(RingBuf, MoveOnlyPayloads)
{
    RingBuf<std::unique_ptr<int>> rb;
    for (int i = 0; i < 20; ++i)    // growth must move, not copy
        rb.emplace_back(std::make_unique<int>(i));
    for (int i = 0; i < 20; ++i) {
        std::unique_ptr<int> p = std::move(rb.front());
        rb.pop_front();
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(*p, i);
    }
    EXPECT_TRUE(rb.empty());
}

TEST(RingBuf, ClearRetainsCapacityForReuse)
{
    RingBuf<int> rb;
    for (int i = 0; i < 100; ++i)
        rb.push_back(i);
    std::size_t cap = rb.capacity();
    EXPECT_EQ(cap, 128u);
    rb.clear();
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.capacity(), cap);    // storage sticks at the high-water mark
    for (int i = 0; i < 100; ++i)
        rb.push_back(i);
    EXPECT_EQ(rb.capacity(), cap);
    EXPECT_EQ(rb.front(), 0);
    EXPECT_EQ(rb.back(), 99);
}

TEST(RingBuf, ReserveRoundsUpToPowerOfTwoAndNeverShrinks)
{
    RingBuf<int> rb;
    rb.reserve(1000);
    EXPECT_EQ(rb.capacity(), 1024u);
    rb.reserve(10);
    EXPECT_EQ(rb.capacity(), 1024u);
}

TEST(RingBuf, MoveTransfersStorage)
{
    RingBuf<int> a(4);
    a.push_back(1);
    a.push_back(2);
    RingBuf<int> b(std::move(a));
    EXPECT_EQ(b.size(), 2u);
    EXPECT_EQ(b.front(), 1);
    RingBuf<int> c;
    c = std::move(b);
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(c.back(), 2);
}

// ---------------------------------------------------------------------------
// DeferredTimer: deadline-deferred wakeups (the event-thinning timer).
// ---------------------------------------------------------------------------

TEST(DeferredTimer, FiresExactlyAtTheArmedDeadline)
{
    EventQueue eq;
    DeferredTimer t(eq, "test.timer");
    std::vector<Time> fired;
    t.setCallback([&] { fired.push_back(eq.now()); });
    t.armAt(Time::us(10));
    EXPECT_TRUE(t.armed());
    EXPECT_EQ(t.deadline(), Time::us(10));
    eq.runAll();
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], Time::us(10));
    EXPECT_FALSE(t.armed());
}

TEST(DeferredTimer, ExtendingTheDeadlineDefersInsteadOfRescheduling)
{
    EventQueue eq;
    DeferredTimer t(eq, "test.timer");
    std::vector<Time> fired;
    t.setCallback([&] { fired.push_back(eq.now()); });
    t.armAt(Time::us(10));
    // Push the deadline out twice before the original event fires: the
    // pending event is reused (deferral), not cancelled + replaced.
    eq.scheduleAt(Time::us(5), [&t] { t.armAt(Time::us(20)); }, "move");
    eq.scheduleAt(Time::us(15), [&t] { t.armAt(Time::us(30)); }, "move");
    eq.runAll();
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], Time::us(30));
    // Both stale wakeups (at 10us and 20us) were absorbed by deferral.
    EXPECT_EQ(t.deferrals(), 2u);
}

TEST(DeferredTimer, ArmingEarlierStillFiresOnTime)
{
    EventQueue eq;
    DeferredTimer t(eq, "test.timer");
    std::vector<Time> fired;
    t.setCallback([&] { fired.push_back(eq.now()); });
    t.armAt(Time::us(100));
    eq.scheduleAt(Time::us(1), [&t] { t.armAt(Time::us(4)); }, "move");
    eq.runAll();
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], Time::us(4));    // never late, never at 100us
}

TEST(DeferredTimer, DisarmSuppressesTheCallback)
{
    EventQueue eq;
    DeferredTimer t(eq, "test.timer");
    int fires = 0;
    t.setCallback([&] { ++fires; });
    t.armAt(Time::us(10));
    eq.scheduleAt(Time::us(5), [&t] { t.disarm(); }, "stop");
    eq.runAll();
    EXPECT_EQ(fires, 0);
    EXPECT_FALSE(t.armed());
}

TEST(DeferredTimer, ReArmAfterDisarmWorks)
{
    EventQueue eq;
    DeferredTimer t(eq, "test.timer");
    std::vector<Time> fired;
    t.setCallback([&] { fired.push_back(eq.now()); });
    t.armAt(Time::us(10));
    eq.scheduleAt(Time::us(5), [&t] {
        t.disarm();
        t.armAt(Time::us(8));
    }, "restart");
    eq.runAll();
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], Time::us(8));
}

TEST(DeferredTimer, ReArmingFromTheCallbackIsPeriodic)
{
    EventQueue eq;
    DeferredTimer t(eq, "test.timer");
    std::vector<Time> fired;
    t.setCallback([&] {
        fired.push_back(eq.now());
        if (fired.size() < 3)
            t.armIn(Time::us(10));
    });
    t.armAt(Time::us(10));
    eq.runAll();
    ASSERT_EQ(fired.size(), 3u);
    EXPECT_EQ(fired[0], Time::us(10));
    EXPECT_EQ(fired[1], Time::us(20));
    EXPECT_EQ(fired[2], Time::us(30));
}

TEST(DeferredTimer, DestructorCancelsThePendingEvent)
{
    EventQueue eq;
    int fires = 0;
    {
        DeferredTimer t(eq, "test.timer");
        t.setCallback([&] { ++fires; });
        t.armAt(Time::us(10));
    }
    // The timer is gone; its event must not run into freed state.
    eq.runAll();
    EXPECT_EQ(fires, 0);
}

TEST(DeferredTimerDeathTest, ArmingInThePastPanics)
{
    EventQueue eq;
    DeferredTimer t(eq, "test.timer");
    t.setCallback([] {});
    eq.scheduleAt(Time::us(10), [&t] {
        EXPECT_DEATH(t.armAt(Time::us(5)), "past");
    }, "probe");
    eq.runAll();
}
