/**
 * @file
 * Tests for the coordinated cross-shard fluid warp (--shards=N
 * --fluid=on, DESIGN.md §15): the WarpCoordinator must actually warp a
 * steady sharded workload, the warped schedule must be the exact
 * sharded schedule (integer-derived measurements bit-equal between
 * --fluid=exact and --fluid=on), and everything — digests, event
 * counts, fluid stats — must be invariant across shard counts.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "check/determinism.hpp"
#include "core/testbed.hpp"
#include "core/warp_coordinator.hpp"
#include "sim/fluid.hpp"
#include "sim/log.hpp"
#include "sim/shard.hpp"
#include "sim/time.hpp"
#include "vmm/domain.hpp"

using namespace sriov;
using sim::FluidMode;
using sim::Time;

namespace {

struct QuietLogs
{
    QuietLogs() { sim::setLogLevel(sim::LogLevel::Quiet); }
};
QuietLogs quiet_logs;

struct WarpRun
{
    double goodput_bps = 0;
    std::uint64_t digest = 0;
    std::uint64_t events = 0;
    std::uint64_t segments = 0;
    std::uint64_t elided = 0;
    Time warped;
};

/** A 2-port, 4-VM SR-IOV testbed driven for 3 simulated seconds. */
WarpRun
runSharded(unsigned shards, FluidMode mode)
{
    sim::ShardScope scope(shards);
    sim::FluidScope fluid(mode);
    core::Testbed::Params p;
    p.num_ports = 2;
    p.itr = "adaptive";
    core::Testbed tb(p);
    for (unsigned i = 0; i < 4; ++i) {
        auto &g = tb.addGuest(vmm::DomainType::Hvm,
                              core::Testbed::NetMode::Sriov);
        tb.startUdpToGuest(g, p.line_bps / 4);
    }
    auto m = tb.measure(Time::sec(1), Time::sec(3));
    WarpRun r;
    r.goodput_bps = m.total_goodput_bps;
    r.digest = tb.orderDigest();
    r.events = tb.executedEvents();
    if (const sim::FluidStats *fs = tb.fluidStats()) {
        r.segments = fs->segments;
        r.elided = fs->events_elided;
        r.warped = fs->warped;
    }
    return r;
}

} // namespace

TEST(WarpCoordinator, ShardedWarpMatchesExactScheduleByteForByte)
{
    WarpRun exact = runSharded(2, FluidMode::Exact);
    WarpRun on = runSharded(2, FluidMode::On);

    // Exact installs the per-island ledgers but no coordinator; On
    // must actually warp — and elide most of the run's events.
    EXPECT_EQ(exact.segments, 0u);
    ASSERT_GT(on.segments, 0u);
    EXPECT_GT(on.warped, Time::sec(1));
    EXPECT_GT(on.elided, on.events);

    // One shared schedule: goodput divides integer bytes by integer
    // picoseconds, so the doubles must be identical, not merely close.
    EXPECT_EQ(exact.goodput_bps, on.goodput_bps);
}

TEST(WarpCoordinator, EverythingInvariantAcrossShardCounts)
{
    WarpRun s1 = runSharded(1, FluidMode::On);
    WarpRun s2 = runSharded(2, FluidMode::On);
    WarpRun s4 = runSharded(4, FluidMode::On);
    ASSERT_GT(s1.segments, 0u);

    // The coordinator probes at quiescent barriers — no probe events —
    // so the executed sequences, their digests, and even the warp
    // decisions are pure functions of simulated time.
    EXPECT_EQ(s1.digest, s2.digest);
    EXPECT_EQ(s1.digest, s4.digest);
    EXPECT_EQ(s1.events, s2.events);
    EXPECT_EQ(s1.events, s4.events);
    EXPECT_EQ(s1.segments, s2.segments);
    EXPECT_EQ(s1.segments, s4.segments);
    EXPECT_EQ(s1.warped, s2.warped);
    EXPECT_EQ(s1.warped, s4.warped);
    EXPECT_EQ(s1.elided, s2.elided);
    EXPECT_EQ(s1.goodput_bps, s2.goodput_bps);
    EXPECT_EQ(s1.goodput_bps, s4.goodput_bps);
}

TEST(WarpCoordinator, WarpedShardedRunIsReproducible)
{
    auto result = check::DeterminismHarness::runTwice([](unsigned) {
        WarpRun r = runSharded(2, FluidMode::On);
        return check::RunDigest{r.digest, r.events};
    });
    EXPECT_TRUE(result.match()) << result.toString();
}

TEST(WarpCoordinator, ExactInstallsLedgersButNoCoordinator)
{
    sim::ShardScope scope(2);
    sim::FluidScope fluid(FluidMode::Exact);
    core::Testbed::Params p;
    p.num_ports = 1;
    core::Testbed tb(p);
    // Exact mode quantizes through the island ledgers (so On shares
    // its schedule) but never warps; there is nothing to coordinate.
    EXPECT_EQ(tb.warpCoordinator(), nullptr);
    EXPECT_EQ(tb.fluidDirector(), nullptr);
    EXPECT_EQ(tb.fluidStats(), nullptr);
}

TEST(WarpCoordinator, OffInstallsNothingSharded)
{
    sim::ShardScope scope(2);
    core::Testbed::Params p;
    p.num_ports = 1;
    core::Testbed tb(p);
    EXPECT_EQ(tb.warpCoordinator(), nullptr);
    EXPECT_EQ(tb.fluidDirector(), nullptr);
    EXPECT_EQ(tb.fluidStats(), nullptr);
}

TEST(WarpCoordinator, LegacyFluidStillUsesTheDirector)
{
    sim::FluidScope fluid(FluidMode::On);
    core::Testbed::Params p;
    p.num_ports = 1;
    core::Testbed tb(p);
    EXPECT_NE(tb.fluidDirector(), nullptr);
    EXPECT_EQ(tb.warpCoordinator(), nullptr);
}
