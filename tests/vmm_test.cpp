/**
 * @file
 * Unit tests for the hypervisor layer: exit stats, VCPUs, domains,
 * device model, grant table, pciback, hot-plug controller, the
 * hypervisor's interrupt/emulation cost paths, and live migration.
 */

#include <gtest/gtest.h>

#include "nic/sriov_nic.hpp"
#include "vmm/grant_table.hpp"
#include "vmm/hotplug_controller.hpp"
#include "vmm/hypervisor.hpp"
#include "vmm/migration.hpp"
#include "vmm/pciback.hpp"

using namespace sriov;
using namespace sriov::vmm;

TEST(ExitStats, RecordsFractionalCounts)
{
    ExitStats ex;
    ex.record(ExitReason::ApicAccess, 8400);
    ex.record(ExitReason::ApicAccess, 9492, 1.13);
    EXPECT_DOUBLE_EQ(ex.count(ExitReason::ApicAccess), 2.13);
    EXPECT_DOUBLE_EQ(ex.cycles(ExitReason::ApicAccess), 17892);
    EXPECT_DOUBLE_EQ(ex.totalCycles(), 17892);
    ex.reset();
    EXPECT_DOUBLE_EQ(ex.totalCount(), 0);
}

TEST(ExitStats, ToStringListsNonZeroReasons)
{
    ExitStats ex;
    ex.record(ExitReason::ExternalInterrupt, 1900);
    std::string s = ex.toString();
    EXPECT_NE(s.find("external-interrupt"), std::string::npos);
    EXPECT_EQ(s.find("hypercall"), std::string::npos);
}

class HypervisorTest : public ::testing::Test
{
  protected:
    HypervisorTest() : hv(eq) {}

    sim::EventQueue eq;
    Hypervisor hv;
};

TEST_F(HypervisorTest, Dom0PinsToFirstThreads)
{
    EXPECT_EQ(hv.dom0().vcpuCount(), 8u);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(&hv.dom0().vcpu(i).pcpu(), &hv.pcpu(i));
}

TEST_F(HypervisorTest, GuestVcpusBindToRemainingThreads)
{
    auto &a = hv.createDomain("vm0", DomainType::Hvm, 64 << 20);
    auto &b = hv.createDomain("vm1", DomainType::Hvm, 64 << 20);
    EXPECT_EQ(&a.vcpu(0).pcpu(), &hv.pcpu(8));
    EXPECT_EQ(&b.vcpu(0).pcpu(), &hv.pcpu(9));
}

TEST_F(HypervisorTest, FindDomainAndGuests)
{
    hv.createDomain("vm0", DomainType::Pvm, 64 << 20);
    EXPECT_NE(hv.findDomain("vm0"), nullptr);
    EXPECT_EQ(hv.findDomain("nope"), nullptr);
    EXPECT_EQ(hv.guests().size(), 1u);
}

TEST_F(HypervisorTest, AllocGuestBufferIsMappedAndBacked)
{
    auto &dom = hv.createDomain("vm0", DomainType::Hvm, 64 << 20);
    mem::Addr gpa = hv.allocGuestBuffer(dom, 3 * mem::kPageSize);
    auto mpa = dom.gpmap().translate(gpa);
    ASSERT_TRUE(mpa.has_value());
    EXPECT_EQ(hv.memory().ownerOf(*mpa), "vm0");
}

TEST_F(HypervisorTest, GuestEoiCostDependsOnAcceleration)
{
    auto &dom = hv.createDomain("vm0", DomainType::Hvm, 64 << 20);
    auto &vcpu = dom.vcpu(0);
    auto snap = vcpu.pcpu().snapshot();

    hv.opts().eoi_accel = false;
    hv.guestEoi(vcpu);
    EXPECT_DOUBLE_EQ(vcpu.pcpu().cyclesSince(snap, "xen"),
                     hv.costs().apic_access_emulate);

    hv.opts().eoi_accel = true;
    snap = vcpu.pcpu().snapshot();
    hv.guestEoi(vcpu);
    EXPECT_DOUBLE_EQ(vcpu.pcpu().cyclesSince(snap, "xen"),
                     hv.costs().eoi_accelerated);

    hv.opts().eoi_accel_check = true;
    snap = vcpu.pcpu().snapshot();
    hv.guestEoi(vcpu);
    EXPECT_DOUBLE_EQ(vcpu.pcpu().cyclesSince(snap, "xen"),
                     hv.costs().eoi_accelerated
                         + hv.costs().eoi_instr_check);
}

TEST_F(HypervisorTest, MaskWritePathDependsOnOptimization)
{
    auto &dom = hv.createDomain("vm0", DomainType::Hvm, 64 << 20);
    auto &vcpu = dom.vcpu(0);

    hv.opts().mask_unmask_accel = false;
    auto snap = vcpu.pcpu().snapshot();
    hv.guestMsiMaskWrite(dom, vcpu, true);
    eq.runAll();
    EXPECT_DOUBLE_EQ(vcpu.pcpu().cyclesSince(snap, "xen"),
                     hv.costs().msi_mask_devmodel_xen);
    EXPECT_EQ(hv.deviceModel(dom).maskWrites(), 1u);
    // Device model work landed on a dom0 CPU under its own tag.
    EXPECT_GT(hv.deviceModel(dom).hostCpu().busyTime(), sim::Time());

    hv.opts().mask_unmask_accel = true;
    snap = vcpu.pcpu().snapshot();
    hv.guestMsiMaskWrite(dom, vcpu, false);
    eq.runAll();
    EXPECT_DOUBLE_EQ(vcpu.pcpu().cyclesSince(snap, "xen"),
                     hv.costs().msi_mask_hyp);
    EXPECT_EQ(hv.deviceModel(dom).maskWrites(), 1u);    // unchanged
}

TEST_F(HypervisorTest, PvmSyscallsPayThePageTableSwitch)
{
    auto &pvm = hv.createDomain("vm0", DomainType::Pvm, 64 << 20);
    auto &hvm = hv.createDomain("vm1", DomainType::Hvm, 64 << 20);
    auto s0 = pvm.vcpu(0).pcpu().snapshot();
    hv.chargeGuestSyscalls(pvm.vcpu(0), 10);
    EXPECT_DOUBLE_EQ(pvm.vcpu(0).pcpu().cyclesSince(s0, "xen"),
                     10 * hv.costs().pvm_syscall_extra);

    auto s1 = hvm.vcpu(0).pcpu().snapshot();
    hv.chargeGuestSyscalls(hvm.vcpu(0), 10);
    EXPECT_DOUBLE_EQ(hvm.vcpu(0).pcpu().cyclesSince(s1, "xen"), 0.0);
}

TEST_F(HypervisorTest, CpuPercentByTagWindowsCorrectly)
{
    auto &dom = hv.createDomain("vm0", DomainType::Hvm, 64 << 20);
    auto snap = hv.snapshot();
    // Half a second of work on one pcpu over a 1 s window = 50%.
    dom.vcpu(0).chargeGuest(hv.costs().cpu_hz * 0.5);
    eq.runUntil(sim::Time::sec(1));
    auto pct = hv.cpuPercentByTag(snap);
    EXPECT_NEAR(pct["vm0"], 50.0, 0.1);
    EXPECT_NEAR(hv.cpuPercent(snap, "vm0"), 50.0, 0.1);
    EXPECT_DOUBLE_EQ(hv.cpuPercent(snap, "missing"), 0.0);
}

namespace {

/** An SR-IOV NIC with one VF armed for interrupt tests. */
struct NicRig
{
    nic::SriovNic nic;

    explicit NicRig(sim::EventQueue &eq)
        : nic(eq, "eth0", pci::Bdf{1, 0, 0})
    {
        nic.sriovCap().setNumVfs(1);
        nic.sriovCap().setVfEnable(true);
    }
};

} // namespace

TEST_F(HypervisorTest, HvmIrqPathInjectsAndCharges)
{
    NicRig rig(eq);
    auto &dom = hv.createDomain("vm0", DomainType::Hvm, 64 << 20);
    auto &vcpu = dom.vcpu(0);
    int handled = 0;
    auto h = hv.bindDeviceIrq(dom, *rig.nic.vf(0), vcpu,
                              [&]() { ++handled; });
    EXPECT_NE(h.virt_vec, 0);
    EXPECT_NE(h.host_vec, 0);

    rig.nic.vf(0)->signalMsix(0);
    EXPECT_EQ(handled, 1);
    EXPECT_DOUBLE_EQ(dom.exits().count(ExitReason::ExternalInterrupt), 1);
    // ISR blocks same-vector redelivery until EOI.
    rig.nic.vf(0)->signalMsix(0);
    EXPECT_EQ(handled, 1);
    hv.guestEoi(vcpu);
    EXPECT_EQ(handled, 2);
}

TEST_F(HypervisorTest, PvmIrqPathUsesEventChannel)
{
    NicRig rig(eq);
    auto &dom = hv.createDomain("vm0", DomainType::Pvm, 64 << 20);
    int handled = 0;
    auto h = hv.bindDeviceIrq(dom, *rig.nic.vf(0), dom.vcpu(0),
                              [&]() { ++handled; });
    rig.nic.vf(0)->signalMsix(0);
    EXPECT_EQ(handled, 1);
    // Mask at the port; redelivery waits for the unmask hypercall.
    dom.evtchn().mask(h.port);
    rig.nic.vf(0)->signalMsix(0);
    EXPECT_EQ(handled, 1);
    hv.guestEvtchnUnmask(dom.vcpu(0), h.port);
    EXPECT_EQ(handled, 2);
    EXPECT_DOUBLE_EQ(dom.exits().count(ExitReason::Hypercall), 1);
}

TEST_F(HypervisorTest, NativeIrqPathBypassesVirtualization)
{
    NicRig rig(eq);
    auto &dom = hv.createDomain("os", DomainType::Native, 64 << 20);
    int handled = 0;
    hv.bindDeviceIrq(dom, *rig.nic.vf(0), dom.vcpu(0),
                     [&]() { ++handled; });
    rig.nic.vf(0)->signalMsix(0);
    EXPECT_EQ(handled, 1);
    EXPECT_DOUBLE_EQ(dom.exits().totalCount(), 0);
}

TEST_F(HypervisorTest, UnbindStopsDeliveryAndFreesVector)
{
    NicRig rig(eq);
    auto &dom = hv.createDomain("vm0", DomainType::Hvm, 64 << 20);
    int handled = 0;
    auto h = hv.bindDeviceIrq(dom, *rig.nic.vf(0), dom.vcpu(0),
                              [&]() { ++handled; });
    hv.unbindDeviceIrq(*rig.nic.vf(0));
    rig.nic.vf(0)->signalMsix(0);
    EXPECT_EQ(handled, 0);
    EXPECT_FALSE(hv.router().vectors().inUse(h.host_vec));
}

TEST_F(HypervisorTest, AssignDeviceAttachesIommuContext)
{
    NicRig rig(eq);
    auto &dom = hv.createDomain("vm0", DomainType::Hvm, 64 << 20);
    hv.assignDevice(dom, *rig.nic.vf(0));
    EXPECT_TRUE(hv.iommu().attached(rig.nic.vf(0)->rid()));
    hv.deassignDevice(dom, *rig.nic.vf(0));
    EXPECT_FALSE(hv.iommu().attached(rig.nic.vf(0)->rid()));
}

TEST(GrantTable, ValidateEnforcesDomainAndWrite)
{
    GrantTable gt;
    auto ref = gt.grantAccess(0x1000, /*peer=*/0, /*readonly=*/true);
    EXPECT_EQ(gt.validate(ref, 0, false), std::optional<mem::Addr>(0x1000));
    EXPECT_FALSE(gt.validate(ref, 1, false).has_value());    // wrong dom
    EXPECT_FALSE(gt.validate(ref, 0, true).has_value());     // readonly
    EXPECT_EQ(gt.violations(), 2u);
}

TEST(GrantTable, EndAccessBlockedWhileMapped)
{
    GrantTable gt;
    auto ref = gt.grantAccess(0x1000, 0, false);
    EXPECT_TRUE(gt.mapGrant(ref, 0));
    EXPECT_FALSE(gt.endAccess(ref));
    gt.unmapGrant(ref);
    EXPECT_TRUE(gt.endAccess(ref));
    EXPECT_EQ(gt.activeGrants(), 0u);
}

TEST(GrantTable, RefsAreRecycled)
{
    GrantTable gt;
    auto a = gt.grantAccess(0x1000, 0, false);
    gt.endAccess(a);
    auto b = gt.grantAccess(0x2000, 0, false);
    EXPECT_EQ(a, b);
}

TEST(Pciback, FiltersHostOwnedWrites)
{
    sim::EventQueue eq;
    Hypervisor hv(eq);
    auto &dom = hv.createDomain("vm0", DomainType::Pvm, 64 << 20);
    pci::PciFunction fn(pci::Bdf{1, 0, 0}, 0x8086, 0x10ca, 0x020000,
                        pci::PciFunction::Kind::Virtual);
    fn.declareBar(0, 4096);
    fn.assignBar(0, 0xc0000000);
    Pciback pb(dom, fn);

    EXPECT_EQ(pb.configRead(pci::cfg::kVendorId, 2), 0x8086u);
    pb.configWrite(pci::cfg::kBar0, 0xdead0000, 4);
    EXPECT_EQ(pb.deniedWrites(), 1u);
    EXPECT_EQ(fn.config().raw32(pci::cfg::kBar0), 0xc0000000u);
    pb.configWrite(pci::cfg::kCommand, pci::cfg::kCmdBusMaster, 2);
    EXPECT_TRUE(fn.busMasterEnabled());
}

TEST(HotplugController, ManagesNamedSlots)
{
    sim::EventQueue eq;
    Hypervisor hv(eq);
    auto &dom = hv.createDomain("vm0", DomainType::Hvm, 64 << 20);
    VirtualHotplugController hpc(dom);
    auto &slot = hpc.addSlot("vf-slot");
    EXPECT_EQ(hpc.slot("vf-slot"), &slot);
    EXPECT_EQ(hpc.slot("other"), nullptr);
    EXPECT_EQ(hpc.slotCount(), 1u);
}

class MigrationTest : public ::testing::Test
{
  protected:
    MigrationTest() : hv(eq), mm(hv) {}

    sim::EventQueue eq;
    Hypervisor hv;
    MigrationManager mm;
};

TEST_F(MigrationTest, CompletesWithPauseResumeOrdering)
{
    auto &dom = hv.createDomain("vm0", DomainType::Hvm, 64 << 20);
    MigrationManager::Params p;
    p.background_dirty_pps = 500;

    std::vector<std::string> events;
    MigrationManager::Result result{};
    bool done = false;
    mm.migrate(
        dom, p, [&]() { events.push_back("pause"); },
        [&]() { events.push_back("resume"); },
        [&](const MigrationManager::Result &r) {
            result = r;
            done = true;
        });
    EXPECT_TRUE(mm.inProgress());
    eq.runUntil(sim::Time::sec(30));
    ASSERT_TRUE(done);
    EXPECT_FALSE(mm.inProgress());
    EXPECT_EQ(events, (std::vector<std::string>{"pause", "resume"}));
    EXPECT_FALSE(dom.paused());
    EXPECT_FALSE(dom.gpmap().dirtyLogEnabled());
    EXPECT_GE(result.rounds, 1u);
    EXPECT_GE(result.pages_sent, (64ull << 20) / mem::kPageSize);
    // 64 MiB over 1 Gb/s is ~0.54 s; total must exceed that.
    EXPECT_GT(result.total(), sim::Time::ms(500));
}

TEST_F(MigrationTest, DowntimeIsBoundedByThresholdPlusOverhead)
{
    auto &dom = hv.createDomain("vm0", DomainType::Hvm, 64 << 20);
    MigrationManager::Params p;
    p.background_dirty_pps = 500;
    p.downtime_threshold_pages = 256;
    p.resume_overhead = sim::Time::ms(400);

    MigrationManager::Result result{};
    bool done = false;
    mm.migrate(dom, p, nullptr, nullptr,
               [&](const MigrationManager::Result &r) {
                   result = r;
                   done = true;
               });
    eq.runUntil(sim::Time::sec(30));
    ASSERT_TRUE(done);
    // Downtime = copying <= threshold pages + fixed overhead.
    sim::Time max_copy = sim::Time::transfer(
        double(p.downtime_threshold_pages) * mem::kPageSize * 8, 1e9);
    EXPECT_LE(result.downtime(), max_copy + p.resume_overhead
                  + sim::Time::ms(1));
    EXPECT_GE(result.downtime(), p.resume_overhead);
}

TEST_F(MigrationTest, TrackedDirtyPagesForceExtraRounds)
{
    auto &dom = hv.createDomain("vm0", DomainType::Hvm, 64 << 20);
    // A "device" keeps dirtying pages during pre-copy.
    bool keep_dirtying = true;
    std::function<void()> dirtier = [&]() {
        if (!keep_dirtying)
            return;
        for (mem::Addr p = 0; p < 2048; ++p)
            dom.gpmap().markDirty(p * mem::kPageSize);
        eq.scheduleIn(sim::Time::ms(50), dirtier);
    };
    eq.scheduleIn(sim::Time::ms(1), dirtier);

    MigrationManager::Params p;
    p.background_dirty_pps = 0;
    p.downtime_threshold_pages = 256;    // below the dirtier's rate
    MigrationManager::Result result{};
    bool done = false;
    mm.migrate(dom, p, [&]() { keep_dirtying = false; }, nullptr,
               [&](const MigrationManager::Result &r) {
                   result = r;
                   done = true;
               });
    eq.runUntil(sim::Time::sec(60));
    ASSERT_TRUE(done);
    EXPECT_GE(result.rounds, 2u);
}

TEST_F(MigrationTest, DomainIsPausedDuringStopAndCopy)
{
    auto &dom = hv.createDomain("vm0", DomainType::Hvm, 64 << 20);
    MigrationManager::Params p;
    bool was_paused_at_pause_cb = false;
    bool done = false;
    mm.migrate(dom, p,
               [&]() { was_paused_at_pause_cb = dom.paused(); }, nullptr,
               [&](const MigrationManager::Result &) { done = true; });
    eq.runUntil(sim::Time::sec(30));
    ASSERT_TRUE(done);
    EXPECT_TRUE(was_paused_at_pause_cb);
    EXPECT_FALSE(dom.paused());
}

TEST_F(HypervisorTest, HwOpcodeMakesTheEoiCheckFree)
{
    auto &dom = hv.createDomain("vm0", DomainType::Hvm, 64 << 20);
    auto &vcpu = dom.vcpu(0);
    hv.opts().eoi_accel = true;
    hv.opts().eoi_accel_check = true;
    hv.opts().eoi_hw_opcode = true;    // §5.2 hardware enhancement
    auto snap = vcpu.pcpu().snapshot();
    hv.guestEoi(vcpu);
    EXPECT_DOUBLE_EQ(vcpu.pcpu().cyclesSince(snap, "xen"),
                     hv.costs().eoi_accelerated);
}
