/**
 * @file
 * Unit tests for the Testbed harness itself (topology construction,
 * guest wiring variants, measurement plumbing) and for the sim::Tracer
 * diagnostics that thread through it.
 */

#include <gtest/gtest.h>

#include "core/dnis.hpp"
#include "core/testbed.hpp"
#include "vmm/hotplug_controller.hpp"
#include "sim/log.hpp"
#include "sim/trace.hpp"

using namespace sriov;
using namespace sriov::core;

namespace {

struct QuietLogs
{
    QuietLogs() { sim::setLogLevel(sim::LogLevel::Quiet); }
};
QuietLogs quiet_logs;

} // namespace

TEST(TestbedTopology, BuildsPaperConfiguration)
{
    Testbed::Params p;
    p.num_ports = 10;
    Testbed tb(p);
    EXPECT_EQ(tb.portCount(), 10u);
    for (unsigned i = 0; i < 10; ++i) {
        EXPECT_EQ(tb.port(i).numVfs(), 7u);           // Fig. 11
        EXPECT_TRUE(tb.port(i).sriovCap().vfEnabled());
    }
    // dom0: 8 VCPUs pinned per Section 6.1.
    EXPECT_EQ(tb.server().dom0().vcpuCount(), 8u);
    // The IOVM hot-added every VF into the host view.
    EXPECT_EQ(tb.iovm().hostVisibleVfs().size(), 70u);
}

TEST(TestbedTopology, VfAllocationFollowsFig11)
{
    Testbed::Params p;
    p.num_ports = 10;
    Testbed tb(p);
    // Guest i lands on port i%10 taking that port's next VF.
    for (unsigned i = 0; i < 25; ++i)
        tb.addGuest(vmm::DomainType::Hvm, Testbed::NetMode::Sriov);
    EXPECT_EQ(tb.guest(0).port, 0u);
    EXPECT_EQ(tb.guest(9).port, 9u);
    EXPECT_EQ(tb.guest(10).port, 0u);
    // Port 0 now serves guests 0, 10, 20 => VFs 0,1,2 in use.
    EXPECT_EQ(tb.guest(20).vf->pool(), tb.port(0).vfPool(2));
}

TEST(TestbedTopology, GuestMacsAreUnique)
{
    Testbed::Params p;
    p.num_ports = 2;
    Testbed tb(p);
    auto &a = tb.addGuest(vmm::DomainType::Hvm, Testbed::NetMode::Sriov);
    auto &b = tb.addGuest(vmm::DomainType::Hvm, Testbed::NetMode::Sriov);
    EXPECT_NE(a.mac.value, b.mac.value);
}

TEST(TestbedTopology, PvGuestGetsNetfrontAndBridge)
{
    Testbed::Params p;
    p.num_ports = 1;
    Testbed tb(p);
    auto &g = tb.addGuest(vmm::DomainType::Hvm, Testbed::NetMode::Pv);
    ASSERT_NE(g.pv, nullptr);
    EXPECT_EQ(g.vf, nullptr);
    EXPECT_TRUE(g.pv->linkUp());
    EXPECT_TRUE(tb.netback(0).connected(*g.pv));
}

TEST(TestbedTopology, BondedGuestHasThreeDevices)
{
    Testbed::Params p;
    p.num_ports = 1;
    Testbed tb(p);
    auto &g = tb.addGuest(vmm::DomainType::Hvm, Testbed::NetMode::Sriov,
                          guest::KernelVersion::v2_6_28,
                          /*bond_vf_with_pv=*/true);
    ASSERT_NE(g.vf, nullptr);
    ASSERT_NE(g.pv, nullptr);
    ASSERT_NE(g.bond, nullptr);
    EXPECT_EQ(g.netdev, g.bond.get());
    EXPECT_EQ(g.bond->slaveCount(), 2u);
    // Both slaves share the bond MAC (fail_over_mac=none).
    EXPECT_EQ(g.vf->mac().value, g.pv->mac().value);
}

TEST(TestbedMeasurement, BreakdownSumsToTotal)
{
    Testbed::Params p;
    p.num_ports = 1;
    p.opts = OptimizationSet::all();
    Testbed tb(p);
    auto &g = tb.addGuest(vmm::DomainType::Hvm, Testbed::NetMode::Sriov);
    tb.startUdpToGuest(g, 1e9);
    auto m = tb.measure(sim::Time::sec(1), sim::Time::sec(2));
    double sum = 0;
    for (const auto &[tag, pct] : m.cpu_by_tag)
        sum += pct;
    EXPECT_NEAR(sum, m.total_pct, 1e-6);
    EXPECT_NEAR(m.dom0_pct + m.xen_pct + m.guests_pct, m.total_pct, 0.5);
    ASSERT_EQ(m.per_guest_bps.size(), 1u);
    EXPECT_NEAR(m.per_guest_bps[0], m.total_goodput_bps, 1.0);
}

TEST(TestbedMeasurement, Dom0NetIsCreatedOnce)
{
    Testbed::Params p;
    p.num_ports = 1;
    Testbed tb(p);
    auto &a = tb.dom0Net(0);
    auto &b = tb.dom0Net(0);
    EXPECT_EQ(&a, &b);
}

TEST(Tracer, CategoriesFilterRecords)
{
    sim::Tracer t;
    t.record(sim::TraceCat::Nic, "dropped");    // disabled: ignored
    EXPECT_EQ(t.size(), 0u);
    t.enable(sim::TraceCat::Nic);
    t.record(sim::TraceCat::Nic, "dropped");
    t.record(sim::TraceCat::Irq, "raise");      // still disabled
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.ofCategory(sim::TraceCat::Nic).size(), 1u);
    EXPECT_NE(t.toString().find("nic: dropped"), std::string::npos);
}

TEST(Tracer, RingBufferBoundsMemory)
{
    sim::Tracer t(/*capacity=*/4);
    t.enable(sim::TraceCat::Irq);
    for (int i = 0; i < 10; ++i)
        t.recordf(sim::TraceCat::Irq, "event %d", i);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.totalRecorded(), 10u);
    EXPECT_EQ(t.droppedRecords(), 6u);
    // Oldest survivors are 6..9.
    EXPECT_EQ(t.records().front().text, "event 6");
    t.clear();
    EXPECT_EQ(t.size(), 0u);
}

TEST(Tracer, TimestampsComeFromTheClock)
{
    sim::Tracer t;
    sim::Time now = sim::Time::us(42);
    t.setClock(&now);
    t.enable(sim::TraceCat::Driver);
    t.record(sim::TraceCat::Driver, "x");
    EXPECT_EQ(t.records().front().when, sim::Time::us(42));
    t.setClock(nullptr);
}

TEST(Tracer, GlobalTracerCapturesNicDrops)
{
    auto &gt = sim::Tracer::global();
    gt.clear();
    gt.enable(sim::TraceCat::Nic);

    sim::EventQueue eq;
    nic::SriovNic nic(eq, "tr0", pci::Bdf{1, 0, 0});
    nic.sriovCap().setNumVfs(1);
    nic.sriovCap().setVfEnable(true);
    nic.functionOf(1).config().write(
        pci::cfg::kCommand,
        pci::cfg::kCmdMemEnable | pci::cfg::kCmdBusMaster, 2);
    nic.setPoolFilter(1, nic::MacAddr::make(1, 1));
    nic::Packet p;
    p.dst = nic::MacAddr::make(1, 1);
    p.bytes = nic::frame::udpFrame(64);
    nic.receive(p);    // no buffers posted: ring-dry drop
    eq.runAll();
    EXPECT_GE(gt.ofCategory(sim::TraceCat::Nic).size(), 1u);
    gt.disableAll();
    gt.clear();
}

TEST(Tracer, MigrationTraceNarratesDnis)
{
    auto &gt = sim::Tracer::global();
    gt.clear();
    gt.enable(sim::TraceCat::Migration);

    Testbed::Params p;
    p.num_ports = 1;
    p.guest_mem = 64ull << 20;
    p.netback_threads = 2;
    Testbed tb(p);
    auto &g = tb.addGuest(vmm::DomainType::Hvm, Testbed::NetMode::Sriov,
                          guest::KernelVersion::v2_6_28, true);
    vmm::VirtualHotplugController hpc(*g.dom);
    auto &slot = hpc.addSlot("s");
    Dnis dnis(tb.server(), tb.migration());
    dnis.manage(*g.dom, *g.vf, *g.pv, *g.bond, slot);
    bool done = false;
    dnis.migrate(Dnis::Params{}, [&](const Dnis::Report &) { done = true; });
    tb.run(sim::Time::sec(30));
    ASSERT_TRUE(done);

    std::string log = gt.toString();
    EXPECT_NE(log.find("quiescing VF"), std::string::npos);
    EXPECT_NE(log.find("pre-copy round"), std::string::npos);
    EXPECT_NE(log.find("stop-and-copy"), std::string::npos);
    EXPECT_NE(log.find("hot-added on target"), std::string::npos);
    gt.disableAll();
    gt.clear();
}
