/**
 * @file
 * Unit tests for the PCIe subsystem: config space, capability chains,
 * MSI/MSI-X, the SR-IOV extended capability, ACS routing, buses,
 * root complex and hot-plug.
 */

#include <gtest/gtest.h>

#include "pci/acs_cap.hpp"
#include "pci/bus.hpp"
#include "pci/capability.hpp"
#include "pci/config_space.hpp"
#include "pci/device.hpp"
#include "pci/function.hpp"
#include "pci/hotplug_slot.hpp"
#include "pci/msi_cap.hpp"
#include "pci/pci_switch.hpp"
#include "pci/root_complex.hpp"
#include "pci/sriov_cap.hpp"

using namespace sriov::pci;

TEST(Bdf, RidEncodingRoundTrips)
{
    Bdf b{0x12, 0x0a, 0x3};
    EXPECT_EQ(b.rid(), 0x1253);
    EXPECT_EQ(Bdf::fromRid(b.rid()), b);
    EXPECT_EQ(b.toString(), "12:0a.3");
}

TEST(ConfigSpace, TypedAccess)
{
    ConfigSpace cs;
    cs.setRaw32(0x10, 0xdeadbeef);
    EXPECT_EQ(cs.raw8(0x10), 0xef);
    EXPECT_EQ(cs.raw16(0x12), 0xdead);
    EXPECT_EQ(cs.raw32(0x10), 0xdeadbeefu);
}

TEST(ConfigSpace, WritesRespectWriteMask)
{
    ConfigSpace cs;
    cs.setRaw32(0x10, 0x11111111);
    cs.write(0x10, 0x22222222, 4);    // read-only by default
    EXPECT_EQ(cs.raw32(0x10), 0x11111111u);
    cs.allowWrite(0x10, 2);
    cs.write(0x10, 0x33333333, 4);    // only low 2 bytes writable
    EXPECT_EQ(cs.raw32(0x10), 0x11113333u);
}

TEST(ConfigSpace, WriteHooksFireOnOverlap)
{
    ConfigSpace cs;
    cs.allowWrite(0x40, 8);
    int hits = 0;
    cs.onWrite(0x42, 2, [&](std::uint16_t) { ++hits; });
    cs.write(0x40, 0, 2);    // below: no overlap
    EXPECT_EQ(hits, 0);
    cs.write(0x42, 0, 1);
    EXPECT_EQ(hits, 1);
    cs.write(0x40, 0, 4);    // spans 0x40..0x43: overlaps
    EXPECT_EQ(hits, 2);
    cs.write(0x44, 0, 4);    // above: no overlap
    EXPECT_EQ(hits, 2);
}

TEST(Capability, ClassicChainIsWalkable)
{
    ConfigSpace cs;
    CapabilityAllocator alloc(cs);
    std::uint16_t a = alloc.addClassic(0x05, 0x18);
    std::uint16_t b = alloc.addClassic(0x11, 0x0c);
    EXPECT_TRUE(cs.raw16(cfg::kStatus) & cfg::kStatusCapList);
    EXPECT_EQ(findClassicCap(cs, 0x05), a);
    EXPECT_EQ(findClassicCap(cs, 0x11), b);
    EXPECT_EQ(findClassicCap(cs, 0x01), 0);
}

TEST(Capability, ExtendedChainIsWalkable)
{
    ConfigSpace cs;
    CapabilityAllocator alloc(cs);
    std::uint16_t a = alloc.addExtended(capid::kExtSriov, 1, 0x40);
    std::uint16_t b = alloc.addExtended(capid::kExtAcs, 1, 8);
    EXPECT_EQ(a, 0x100);
    EXPECT_EQ(findExtendedCap(cs, capid::kExtSriov), a);
    EXPECT_EQ(findExtendedCap(cs, capid::kExtAcs), b);
    EXPECT_EQ(findExtendedCap(cs, 0x001), 0);
}

class MsiCapTest : public ::testing::Test
{
  protected:
    MsiCapTest() : alloc(cs), msi(cs, alloc) {}

    ConfigSpace cs;
    CapabilityAllocator alloc;
    MsiCapability msi;
};

TEST_F(MsiCapTest, ProgramAndReadBack)
{
    auto msg = MsiMessage::forVector(3, 0x51);
    msi.program(msg);
    EXPECT_EQ(msi.message().address, msg.address);
    EXPECT_EQ(msi.message().vector(), 0x51);
    EXPECT_EQ(msi.message().destApic(), 3);
}

TEST_F(MsiCapTest, EnableAndMaskBits)
{
    EXPECT_FALSE(msi.enabled());
    msi.setEnable(true);
    EXPECT_TRUE(msi.enabled());
    EXPECT_FALSE(msi.masked());
    msi.setMask(true);
    EXPECT_TRUE(msi.masked());
}

TEST_F(MsiCapTest, MaskWriteHookObservesTransitions)
{
    std::vector<bool> seen;
    msi.onMaskWrite([&](bool m) { seen.push_back(m); });
    msi.setMask(true);
    msi.setMask(false);
    EXPECT_EQ(seen, (std::vector<bool>{true, false}));
}

TEST(MsixCap, EntriesComeUpMasked)
{
    ConfigSpace cs;
    CapabilityAllocator alloc(cs);
    MsixCapability mx(cs, alloc, 3, 3);
    EXPECT_EQ(mx.tableSize(), 3u);
    mx.setEnable(true);
    EXPECT_FALSE(mx.deliverable(0));
    mx.maskEntry(0, false);
    EXPECT_TRUE(mx.deliverable(0));
    EXPECT_FALSE(mx.deliverable(1));
}

TEST(MsixCap, MaskHookFiresOnTransitionOnly)
{
    ConfigSpace cs;
    CapabilityAllocator alloc(cs);
    MsixCapability mx(cs, alloc, 2, 3);
    int hits = 0;
    mx.onMaskWrite([&](unsigned, bool) { ++hits; });
    mx.maskEntry(0, true);    // already masked: no transition
    EXPECT_EQ(hits, 0);
    mx.maskEntry(0, false);
    mx.maskEntry(0, false);
    EXPECT_EQ(hits, 1);
}

class SriovCapParam
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(SriovCapParam, VfRidFollowsOffsetAndStride)
{
    auto [offset, stride, index] = GetParam();
    ConfigSpace cs;
    CapabilityAllocator alloc(cs);
    SriovCapability::Params p;
    p.first_vf_offset = std::uint16_t(offset);
    p.vf_stride = std::uint16_t(stride);
    SriovCapability cap(cs, alloc, p);
    Rid pf_rid = Bdf{1, 0, 0}.rid();
    EXPECT_EQ(cap.vfRid(pf_rid, unsigned(index)),
              Rid(pf_rid + offset + stride * index));
}

INSTANTIATE_TEST_SUITE_P(
    OffsetsStrides, SriovCapParam,
    ::testing::Combine(::testing::Values(0x80, 0x10, 0x100),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(0, 1, 6)));

TEST(SriovCap, EnableHookFiresOnTransition)
{
    ConfigSpace cs;
    CapabilityAllocator alloc(cs);
    SriovCapability cap(cs, alloc, SriovCapability::Params{});
    int enables = 0, disables = 0;
    std::uint16_t last_n = 0;
    cap.onVfEnable([&](bool en, std::uint16_t n) {
        (en ? enables : disables)++;
        last_n = n;
    });
    cap.setNumVfs(5);
    EXPECT_EQ(enables, 0);
    cap.setVfEnable(true);
    EXPECT_EQ(enables, 1);
    EXPECT_EQ(last_n, 5);
    cap.setVfEnable(true);    // no transition
    EXPECT_EQ(enables, 1);
    cap.setVfEnable(false);
    EXPECT_EQ(disables, 1);
    EXPECT_TRUE(cap.vfMemoryEnabled() == false);
}

TEST(SriovCapDeathTest, NumVfsAboveTotalIsFatal)
{
    ConfigSpace cs;
    CapabilityAllocator alloc(cs);
    SriovCapability cap(cs, alloc, SriovCapability::Params{});
    EXPECT_DEATH(cap.setNumVfs(cap.totalVfs() + 1), "TotalVFs");
}

TEST(AcsCap, ControlBits)
{
    ConfigSpace cs;
    CapabilityAllocator alloc(cs);
    AcsCapability acs(cs, alloc);
    EXPECT_FALSE(acs.requestRedirect());
    acs.setControl(AcsCapability::kRequestRedirect
                   | AcsCapability::kUpstreamForwarding);
    EXPECT_TRUE(acs.requestRedirect());
    EXPECT_TRUE(acs.upstreamForwarding());
    EXPECT_FALSE(acs.sourceValidation());
}

TEST(PciFunction, VfDoesNotAnswerScans)
{
    PciFunction pf(Bdf{1, 0, 0}, 0x8086, 0x10c9, 0x020000,
                   PciFunction::Kind::Physical);
    PciFunction vf(Bdf{1, 16, 0}, 0x8086, 0x10ca, 0x020000,
                   PciFunction::Kind::Virtual);
    EXPECT_TRUE(pf.respondsToScan());
    EXPECT_FALSE(vf.respondsToScan());
    EXPECT_TRUE(vf.isVf());
}

TEST(PciFunction, MsiPendingWhileMaskedDeliversNothing)
{
    PciFunction fn(Bdf{1, 0, 0}, 0x8086, 0x10c9, 0x020000,
                   PciFunction::Kind::Physical);
    fn.addMsi();
    int delivered = 0;
    fn.setMsiSink([&](Rid, const MsiMessage &) { ++delivered; });
    fn.msi()->setEnable(true);
    fn.msi()->setMask(true);
    EXPECT_FALSE(fn.signalMsi());
    EXPECT_TRUE(fn.msi()->pending());
    EXPECT_EQ(delivered, 0);
    fn.msi()->setMask(false);
    EXPECT_TRUE(fn.signalMsi());
    EXPECT_EQ(delivered, 1);
}

TEST(PciFunction, MsixDelivery)
{
    PciFunction fn(Bdf{1, 0, 0}, 0x8086, 0x10ca, 0x020000,
                   PciFunction::Kind::Virtual);
    fn.addMsix(3, 3);
    std::vector<std::uint8_t> vecs;
    fn.setMsiSink([&](Rid, const MsiMessage &m) {
        vecs.push_back(m.vector());
    });
    fn.msix()->programEntry(0, MsiMessage::forVector(0, 0x41));
    fn.msix()->setEnable(true);
    EXPECT_FALSE(fn.signalMsix(0));    // masked at reset
    fn.msix()->maskEntry(0, false);
    EXPECT_TRUE(fn.signalMsix(0));
    EXPECT_EQ(vecs, (std::vector<std::uint8_t>{0x41}));
}

TEST(PciBus, ScanFindsPfsNotVfs)
{
    PciBus bus(1);
    PciFunction pf(Bdf{1, 0, 0}, 0x8086, 0x10c9, 0x020000,
                   PciFunction::Kind::Physical);
    PciFunction vf(Bdf{1, 16, 0}, 0x8086, 0x10ca, 0x020000,
                   PciFunction::Kind::Virtual);
    bus.attach(pf);
    bus.attach(vf);
    auto found = bus.scan();
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0], &pf);
    // But the platform sees both.
    EXPECT_EQ(bus.allFunctions().size(), 2u);
    // A probe at the VF's vendor-ID register reads all-ones.
    EXPECT_EQ(bus.configRead(vf.bdf(), cfg::kVendorId, 2), cfg::kNoDevice);
    // Non-probe registers answer (the IOVM knows the VF exists).
    EXPECT_EQ(bus.configRead(vf.bdf(), cfg::kDeviceId, 2), 0x10cau);
}

TEST(PciBus, ConfigReadOfEmptySlot)
{
    PciBus bus(0);
    EXPECT_EQ(bus.configRead(Bdf{0, 3, 0}, cfg::kVendorId, 2),
              cfg::kNoDevice);
}

TEST(PciBus, ByRidAndDetach)
{
    PciBus bus(2);
    PciFunction fn(Bdf{2, 4, 1}, 0x8086, 0x10c9, 0x020000,
                   PciFunction::Kind::Physical);
    bus.attach(fn);
    EXPECT_EQ(bus.byRid(fn.rid()), &fn);
    bus.detach(fn);
    EXPECT_EQ(bus.byRid(fn.rid()), nullptr);
}

TEST(RootComplex, BarAssignmentAndMmioRouting)
{
    RootComplex rc;
    PciFunction fn(Bdf{0, 1, 0}, 0x8086, 0x10c9, 0x020000,
                   PciFunction::Kind::Physical);
    fn.declareBar(0, 128 * 1024);
    rc.plug(fn);
    EXPECT_GE(fn.bar(0).base, RootComplex::kMmioBase);
    auto t = rc.resolveMmio(fn.bar(0).base + 0x20);
    EXPECT_EQ(t.fn, &fn);
    EXPECT_EQ(t.offset, 0x20u);
    rc.unplug(fn);
    EXPECT_EQ(rc.resolveMmio(fn.bar(0).base + 0x20).fn, nullptr);
}

TEST(RootComplex, BarsDoNotOverlap)
{
    RootComplex rc;
    PciFunction a(Bdf{0, 1, 0}, 0x8086, 1, 0, PciFunction::Kind::Physical);
    PciFunction b(Bdf{0, 2, 0}, 0x8086, 2, 0, PciFunction::Kind::Physical);
    a.declareBar(0, 16 * 1024);
    b.declareBar(0, 16 * 1024);
    rc.plug(a);
    rc.plug(b);
    bool disjoint = a.bar(0).base + a.bar(0).size <= b.bar(0).base
        || b.bar(0).base + b.bar(0).size <= a.bar(0).base;
    EXPECT_TRUE(disjoint);
}

TEST(PciSwitch, AcsRedirectControlsRouting)
{
    PciSwitch sw(2);
    PciFunction a(Bdf{5, 0, 0}, 0x8086, 1, 0, PciFunction::Kind::Virtual);
    PciFunction b(Bdf{6, 0, 0}, 0x8086, 2, 0, PciFunction::Kind::Virtual);
    sw.port(0).attach(&a);
    sw.port(1).attach(&b);

    EXPECT_EQ(sw.accessPeer(a.rid(), b.rid()),
              PciSwitch::Route::DirectP2P);
    sw.setRedirectAll(true);
    EXPECT_EQ(sw.accessPeer(a.rid(), b.rid()),
              PciSwitch::Route::RedirectedUpstream);
    sw.setRedirectAll(false);
    EXPECT_EQ(sw.accessPeer(a.rid(), b.rid()),
              PciSwitch::Route::DirectP2P);
}

TEST(PciSwitch, UnknownRidIsBlocked)
{
    PciSwitch sw(2);
    EXPECT_EQ(sw.accessPeer(0x500, 0x600), PciSwitch::Route::Blocked);
}

TEST(PciSwitch, RedirectIsPerSourcePort)
{
    PciSwitch sw(2);
    PciFunction a(Bdf{5, 0, 0}, 0x8086, 1, 0, PciFunction::Kind::Virtual);
    PciFunction b(Bdf{6, 0, 0}, 0x8086, 2, 0, PciFunction::Kind::Virtual);
    sw.port(0).attach(&a);
    sw.port(1).attach(&b);
    sw.port(0).acs().setControl(AcsCapability::kRequestRedirect);
    EXPECT_EQ(sw.accessPeer(a.rid(), b.rid()),
              PciSwitch::Route::RedirectedUpstream);
    EXPECT_EQ(sw.accessPeer(b.rid(), a.rid()),
              PciSwitch::Route::DirectP2P);
}

TEST(HotplugSlot, InsertNotifiesListener)
{
    struct Listener : HotplugListener
    {
        int adds = 0;
        int removes = 0;
        HotplugSlot *slot = nullptr;

        void hotAdded(PciFunction &) override { ++adds; }
        void removeRequested(PciFunction &) override
        {
            ++removes;
            slot->eject();    // immediate compliance
        }
    } listener;

    HotplugSlot slot("s0");
    listener.slot = &slot;
    slot.setListener(&listener);
    PciFunction fn(Bdf{1, 0, 0}, 0x8086, 1, 0, PciFunction::Kind::Virtual);
    slot.insert(fn);
    EXPECT_EQ(listener.adds, 1);
    EXPECT_TRUE(slot.occupied());

    bool ejected = false;
    slot.requestRemoval([&]() { ejected = true; });
    EXPECT_EQ(listener.removes, 1);
    EXPECT_TRUE(ejected);
    EXPECT_FALSE(slot.occupied());
}

TEST(HotplugSlot, DeferredEject)
{
    HotplugSlot slot("s0");
    PciFunction fn(Bdf{1, 0, 0}, 0x8086, 1, 0, PciFunction::Kind::Virtual);

    struct Listener : HotplugListener
    {
        void hotAdded(PciFunction &) override {}
        void removeRequested(PciFunction &) override {}    // defers
    } listener;
    slot.setListener(&listener);
    slot.insert(fn);
    bool ejected = false;
    slot.requestRemoval([&]() { ejected = true; });
    EXPECT_TRUE(slot.removalPending());
    EXPECT_FALSE(ejected);
    slot.eject();
    EXPECT_TRUE(ejected);
}

TEST(HotplugSlotDeathTest, DoubleInsertPanics)
{
    HotplugSlot slot("s0");
    PciFunction fn(Bdf{1, 0, 0}, 0x8086, 1, 0, PciFunction::Kind::Virtual);
    slot.insert(fn);
    EXPECT_DEATH(slot.insert(fn), "occupied");
}

TEST(PciDevice, FindByRid)
{
    PciDevice dev;
    auto &fn = dev.addFunction(std::make_unique<PciFunction>(
        Bdf{1, 0, 0}, 0x8086, 0x10c9, 0x020000,
        PciFunction::Kind::Physical));
    EXPECT_EQ(dev.findByRid(fn.rid()), &fn);
    EXPECT_EQ(dev.findByRid(0xffff), nullptr);
    dev.removeFunction(fn);
    EXPECT_EQ(dev.functionCount(), 0u);
}
