/**
 * @file
 * Unit tests for the NIC models: frames, wire, rings, L2 switch,
 * mailbox, and the SR-IOV/VMDq/plain port models.
 */

#include <gtest/gtest.h>

#include <functional>

#include "mem/iommu.hpp"
#include "nic/desc_ring.hpp"
#include "nic/l2_switch.hpp"
#include "nic/mailbox.hpp"
#include "nic/packet.hpp"
#include "nic/sriov_nic.hpp"
#include "nic/vmdq_nic.hpp"
#include "nic/wire.hpp"
#include "sim/thinning.hpp"

using namespace sriov;
using namespace sriov::nic;

class PayloadSizes : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(PayloadSizes, UdpFrameAccounting)
{
    std::uint32_t payload = GetParam();
    Packet p;
    p.bytes = frame::udpFrame(payload);
    p.kind = Packet::Kind::Udp;
    EXPECT_EQ(p.payloadBytes(), payload);
    EXPECT_EQ(p.wireBytes(), p.bytes + frame::kPreambleIfg);
    // VLAN tags add 4 bytes on the wire.
    p.vlan = 100;
    EXPECT_EQ(p.wireBytes(), p.bytes + frame::kPreambleIfg + 4);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PayloadSizes,
                         ::testing::Values(64, 512, 1472, 2000, 4000));

TEST(Packet, LineRateGoodputMatchesPaper)
{
    // A saturated line carries payload/wire of its rate: 1472/1538 of
    // 10 Gb/s = 9.57 Gb/s, the paper's line-rate figure.
    Packet p;
    p.bytes = frame::udpFrame(frame::kMaxUdpPayload);
    double goodput = 10e9 * p.payloadBytes() / p.wireBytes();
    EXPECT_NEAR(goodput / 1e9, 9.57, 0.005);
}

TEST(MacAddr, MakeAndFormat)
{
    MacAddr m = MacAddr::make(3, 0x0102);
    EXPECT_EQ(m.toString(), "02:00:00:03:01:02");
    EXPECT_TRUE(MacAddr::broadcast().isBroadcast());
    EXPECT_FALSE(m.isBroadcast());
}

namespace {

class SinkEndpoint : public WireEndpoint
{
  public:
    std::vector<Packet> got;
    std::vector<sim::Time> at;
    sim::EventQueue *eq = nullptr;

    void
    receive(const Packet &p) override
    {
        got.push_back(p);
        if (eq)
            at.push_back(eq->now());
    }
};

Packet
udpPacket(MacAddr dst, std::uint32_t payload = 1472)
{
    Packet p;
    p.dst = dst;
    p.src = MacAddr::make(9, 9);
    p.bytes = frame::udpFrame(payload);
    p.kind = Packet::Kind::Udp;
    return p;
}

} // namespace

TEST(Wire, DeliversAfterSerializationAndPropagation)
{
    sim::EventQueue eq;
    Wire::Params wp;
    wp.line_bps = 1e9;
    wp.propagation = sim::Time::ns(500);
    Wire wire(eq, wp);
    SinkEndpoint a, b;
    b.eq = &eq;
    wire.connect(a, b);
    Packet p = udpPacket(MacAddr::make(1, 1));
    wire.send(a, p);
    eq.runAll();
    ASSERT_EQ(b.got.size(), 1u);
    // 1538 wire bytes at 1 Gb/s = 12.304 us + 0.5 us propagation.
    EXPECT_EQ(b.at[0], sim::Time::ns(12804));
}

TEST(Wire, BackToBackFramesSerialize)
{
    sim::EventQueue eq;
    Wire wire(eq);
    SinkEndpoint a, b;
    b.eq = &eq;
    wire.connect(a, b);
    wire.send(a, udpPacket(MacAddr::make(1, 1)));
    wire.send(a, udpPacket(MacAddr::make(1, 1)));
    eq.runAll();
    ASSERT_EQ(b.got.size(), 2u);
    EXPECT_EQ((b.at[1] - b.at[0]), sim::Time::ns(12304));
}

TEST(Wire, DirectionsAreIndependent)
{
    sim::EventQueue eq;
    Wire wire(eq);
    SinkEndpoint a, b;
    wire.connect(a, b);
    wire.send(a, udpPacket(MacAddr::make(1, 1)));
    wire.send(b, udpPacket(MacAddr::make(2, 2)));
    eq.runAll();
    EXPECT_EQ(a.got.size(), 1u);
    EXPECT_EQ(b.got.size(), 1u);
}

TEST(Wire, TxQueueCapDrops)
{
    sim::EventQueue eq;
    Wire wire(eq);
    SinkEndpoint a, b;
    wire.connect(a, b);
    for (std::size_t i = 0; i < Wire::kTxQueueCap + 10; ++i)
        wire.send(a, udpPacket(MacAddr::make(1, 1), 64));
    EXPECT_GT(wire.dropped(), 0u);
    eq.runAll();
    // Every frame either arrived or was counted as dropped.
    EXPECT_EQ(b.got.size() + wire.dropped(), Wire::kTxQueueCap + 10);
}

// ---------------------------------------------------------------------------
// Wire event thinning: the burst-coalesced delivery path must be
// observably identical to the exact per-hop path — same delivery
// instants, same order, same offered/delivered/dropped counts — for
// every edge case the exact model handles.
// ---------------------------------------------------------------------------

namespace {

struct WireRun
{
    std::vector<sim::Time> a_at, b_at;
    std::vector<std::uint32_t> a_bytes, b_bytes;
    std::uint64_t offered = 0, delivered = 0, dropped = 0;
};

/** Drive @p scenario(eq, wire, a, b) to quiescence in one mode. */
WireRun
runWire(bool thin,
        const std::function<void(sim::EventQueue &, Wire &, SinkEndpoint &,
                                 SinkEndpoint &)> &scenario)
{
    sim::ThinningScope scope(thin);
    sim::EventQueue eq;
    Wire::Params wp;
    wp.line_bps = 1e9;
    wp.propagation = sim::Time::ns(500);
    Wire wire(eq, wp);
    SinkEndpoint a, b;
    a.eq = &eq;
    b.eq = &eq;
    wire.connect(a, b);
    scenario(eq, wire, a, b);
    eq.runAll();
    WireRun r;
    for (std::size_t i = 0; i < a.got.size(); ++i) {
        r.a_at.push_back(a.at[i]);
        r.a_bytes.push_back(a.got[i].bytes);
    }
    for (std::size_t i = 0; i < b.got.size(); ++i) {
        r.b_at.push_back(b.at[i]);
        r.b_bytes.push_back(b.got[i].bytes);
    }
    r.offered = wire.offered();
    r.delivered = wire.delivered();
    r.dropped = wire.dropped();
    EXPECT_EQ(wire.inFlight(), 0u);
    return r;
}

void
expectSameRun(const WireRun &t, const WireRun &e)
{
    EXPECT_EQ(t.a_at, e.a_at);
    EXPECT_EQ(t.b_at, e.b_at);
    EXPECT_EQ(t.a_bytes, e.a_bytes);
    EXPECT_EQ(t.b_bytes, e.b_bytes);
    EXPECT_EQ(t.offered, e.offered);
    EXPECT_EQ(t.delivered, e.delivered);
    EXPECT_EQ(t.dropped, e.dropped);
}

} // namespace

TEST(WireThinning, BackToBackBurstMatchesExactMode)
{
    auto scenario = [](sim::EventQueue &eq, Wire &w, SinkEndpoint &a,
                       SinkEndpoint &) {
        // A burst of mixed-size frames sent back-to-back, plus a
        // straggler injected while the burst is still serializing.
        for (std::uint32_t payload : {64u, 1472u, 512u, 1472u, 100u})
            w.send(a, udpPacket(MacAddr::make(1, 1), payload));
        eq.scheduleAt(sim::Time::us(20), [&w, &a] {
            w.send(a, udpPacket(MacAddr::make(1, 1), 900));
        });
    };
    WireRun thin = runWire(true, scenario);
    WireRun exact = runWire(false, scenario);
    ASSERT_EQ(thin.b_at.size(), 6u);
    expectSameRun(thin, exact);
}

TEST(WireThinning, MidBurstQueueFullDropsMatchExactMode)
{
    auto scenario = [](sim::EventQueue &eq, Wire &w, SinkEndpoint &a,
                       SinkEndpoint &) {
        // Overflow the TX queue in one shot, then keep offering while
        // the backlog drains: late frames are accepted exactly when the
        // exact model's queue has space again.
        for (std::size_t i = 0; i < Wire::kTxQueueCap + 50; ++i)
            w.send(a, udpPacket(MacAddr::make(1, 1), 64));
        for (int k = 1; k <= 20; ++k) {
            eq.scheduleAt(sim::Time::us(unsigned(k)), [&w, &a] {
                w.send(a, udpPacket(MacAddr::make(1, 1), 64));
            });
        }
    };
    WireRun thin = runWire(true, scenario);
    WireRun exact = runWire(false, scenario);
    EXPECT_GT(thin.dropped, 0u);
    expectSameRun(thin, exact);
}

TEST(WireThinning, DirectionsCoalesceIndependently)
{
    auto scenario = [](sim::EventQueue &eq, Wire &w, SinkEndpoint &a,
                       SinkEndpoint &b) {
        for (int i = 0; i < 10; ++i)
            w.send(a, udpPacket(MacAddr::make(1, 1), 1472));
        for (int i = 0; i < 10; ++i)
            w.send(b, udpPacket(MacAddr::make(2, 2), 64));
        // Interleave more traffic in both directions mid-flight.
        eq.scheduleAt(sim::Time::us(30), [&w, &a, &b] {
            w.send(b, udpPacket(MacAddr::make(2, 2), 1472));
            w.send(a, udpPacket(MacAddr::make(1, 1), 64));
        });
    };
    WireRun thin = runWire(true, scenario);
    WireRun exact = runWire(false, scenario);
    ASSERT_EQ(thin.a_at.size(), 11u);
    ASSERT_EQ(thin.b_at.size(), 11u);
    expectSameRun(thin, exact);
}

TEST(WireThinning, PropagationOrderingIsPreserved)
{
    // Each frame arrives serialization + propagation after its line
    // slot; within a direction, deliveries are in FIFO order at
    // strictly increasing instants.
    auto scenario = [](sim::EventQueue &, Wire &w, SinkEndpoint &a,
                       SinkEndpoint &) {
        for (std::uint32_t payload : {1472u, 64u, 800u})
            w.send(a, udpPacket(MacAddr::make(1, 1), payload));
    };
    WireRun thin = runWire(true, scenario);
    WireRun exact = runWire(false, scenario);
    ASSERT_EQ(thin.b_at.size(), 3u);
    EXPECT_LT(thin.b_at[0], thin.b_at[1]);
    EXPECT_LT(thin.b_at[1], thin.b_at[2]);
    // First frame: 1538 wire bytes at 1 Gb/s + 500 ns propagation.
    EXPECT_EQ(thin.b_at[0], sim::Time::ns(12804));
    expectSameRun(thin, exact);
}

TEST(WireThinning, SendAtRequiresNowInExactMode)
{
    sim::ThinningScope scope(false);
    sim::EventQueue eq;
    Wire wire(eq);
    SinkEndpoint a, b;
    wire.connect(a, b);
    // release == now degrades to send(); a future release is a
    // programming error in exact mode.
    EXPECT_TRUE(wire.sendAt(a, udpPacket(MacAddr::make(1, 1)), eq.now()));
    EXPECT_DEATH(wire.sendAt(a, udpPacket(MacAddr::make(1, 1)),
                             sim::Time::us(5)),
                 "sendAt in exact mode");
}

TEST(DescRing, PostTakeOverflow)
{
    DescRing ring(2);
    EXPECT_TRUE(ring.post(0x1000));
    EXPECT_TRUE(ring.post(0x2000));
    EXPECT_FALSE(ring.post(0x3000));    // full
    EXPECT_EQ(ring.available(), 2u);
    EXPECT_EQ(*ring.take(), 0x1000u);
    EXPECT_EQ(*ring.take(), 0x2000u);
    EXPECT_FALSE(ring.take().has_value());
    ring.countOverflow();
    EXPECT_EQ(ring.overflows(), 1u);
    EXPECT_EQ(ring.posted(), 2u);
    EXPECT_EQ(ring.consumed(), 2u);
}

TEST(DescRing, ResetEmpties)
{
    DescRing ring(4);
    ring.post(1);
    ring.post(2);
    ring.reset();
    EXPECT_TRUE(ring.empty());
}

TEST(DescRing, ResetCountsDiscardedBuffers)
{
    DescRing ring(8);
    for (int i = 0; i < 5; ++i)
        ring.post(mem::Addr(i) * 0x1000);
    (void)ring.take();
    (void)ring.take();
    ring.reset();
    EXPECT_EQ(ring.discarded(), 3u);    // posted but never consumed
    EXPECT_EQ(ring.posted(), 5u);
    EXPECT_EQ(ring.consumed(), 2u);
    EXPECT_TRUE(ring.empty());
    // The ring stays usable at full capacity after a reset.
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(ring.post(mem::Addr(i)));
    EXPECT_FALSE(ring.post(0x9000));
    ring.reset();
    EXPECT_EQ(ring.discarded(), 11u);
}

TEST(L2Switch, ClassifiesByMacAndVlan)
{
    L2Switch l2;
    l2.setFilter(MacAddr::make(1, 1), 0, 3);
    l2.setFilter(MacAddr::make(1, 1), 7, 5);

    Packet p = udpPacket(MacAddr::make(1, 1));
    EXPECT_EQ(*l2.classify(p), 3);
    p.vlan = 7;
    EXPECT_EQ(*l2.classify(p), 5);
    p.vlan = 8;
    EXPECT_FALSE(l2.classify(p).has_value());
}

TEST(L2Switch, ClearPoolRemovesAllItsFilters)
{
    L2Switch l2;
    l2.setFilter(MacAddr::make(1, 1), 0, 3);
    l2.setFilter(MacAddr::make(1, 2), 0, 3);
    l2.setFilter(MacAddr::make(1, 3), 0, 4);
    l2.clearPool(3);
    EXPECT_EQ(l2.filterCount(), 1u);
    EXPECT_FALSE(l2.classify(udpPacket(MacAddr::make(1, 1))).has_value());
    EXPECT_TRUE(l2.classify(udpPacket(MacAddr::make(1, 3))).has_value());
}

TEST(L2Switch, ManyFiltersSurviveGrowthAndProbing)
{
    L2Switch l2;
    // Enough filters to force several grow/rehash cycles from the
    // 16-slot initial table, with colliding probe chains on the way.
    for (std::uint16_t i = 0; i < 200; ++i)
        l2.setFilter(MacAddr::make(3, i), i % 5, L2Switch::Pool(i % 7));
    EXPECT_EQ(l2.filterCount(), 200u);
    for (std::uint16_t i = 0; i < 200; ++i) {
        Packet p = udpPacket(MacAddr::make(3, i));
        p.vlan = i % 5;
        ASSERT_TRUE(l2.classify(p).has_value()) << i;
        EXPECT_EQ(*l2.classify(p), L2Switch::Pool(i % 7));
    }
    // Clear every even filter: odd ones must still resolve through
    // the tombstones left in their probe chains.
    for (std::uint16_t i = 0; i < 200; i += 2)
        l2.clearFilter(MacAddr::make(3, i), i % 5);
    EXPECT_EQ(l2.filterCount(), 100u);
    for (std::uint16_t i = 0; i < 200; ++i) {
        Packet p = udpPacket(MacAddr::make(3, i));
        p.vlan = i % 5;
        EXPECT_EQ(l2.classify(p).has_value(), i % 2 == 1) << i;
    }
}

TEST(L2Switch, ReprogramAfterClearReusesSlot)
{
    L2Switch l2;
    l2.setFilter(MacAddr::make(1, 1), 0, 3);
    l2.clearFilter(MacAddr::make(1, 1), 0);
    EXPECT_EQ(l2.filterCount(), 0u);
    EXPECT_FALSE(l2.classify(udpPacket(MacAddr::make(1, 1))).has_value());
    l2.setFilter(MacAddr::make(1, 1), 0, 5);
    EXPECT_EQ(l2.filterCount(), 1u);
    EXPECT_EQ(*l2.classify(udpPacket(MacAddr::make(1, 1))), 5);
}

TEST(L2Switch, RepeatLookupCacheFollowsMutations)
{
    L2Switch l2;
    l2.setFilter(MacAddr::make(1, 1), 0, 3);
    Packet p = udpPacket(MacAddr::make(1, 1));
    EXPECT_EQ(*l2.classify(p), 3);
    EXPECT_EQ(*l2.classify(p), 3);    // repeat: last-lookup cache path
    l2.setFilter(MacAddr::make(1, 1), 0, 4);
    EXPECT_EQ(*l2.classify(p), 4);    // move must invalidate the cache
    l2.clearFilter(MacAddr::make(1, 1), 0);
    EXPECT_FALSE(l2.classify(p).has_value());
    EXPECT_EQ(l2.lookups(), 4u);
    EXPECT_EQ(l2.matched(), 3u);
    EXPECT_EQ(l2.unmatched(), 1u);
}

TEST(L2Switch, ZeroMacZeroVlanIsProgrammable)
{
    // Key 0 must be a regular key, not a sentinel for an empty slot.
    L2Switch l2;
    l2.setFilter(MacAddr{0}, 0, 2);
    Packet p;
    p.dst = MacAddr{0};
    p.bytes = 64;
    EXPECT_EQ(*l2.classify(p), 2);
    l2.clearFilter(MacAddr{0}, 0);
    EXPECT_FALSE(l2.classify(p).has_value());
}

TEST(Mailbox, PostRingAckCycle)
{
    Mailbox mb;
    std::vector<MboxMessage::Type> got;
    mb.setDoorbell([&](const MboxMessage &m) { got.push_back(m.type); });

    MboxMessage msg;
    msg.type = MboxMessage::Type::SetMac;
    EXPECT_TRUE(mb.post(msg));
    EXPECT_TRUE(mb.busy());
    EXPECT_FALSE(mb.post(msg));    // register busy until ack
    mb.ack();
    EXPECT_TRUE(mb.post(msg));
    EXPECT_EQ(got.size(), 2u);
}

class SriovNicTest : public ::testing::Test
{
  protected:
    SriovNicTest() : nic(eq, "eth0", pci::Bdf{1, 0, 0})
    {
        map.mapRange(0, 0x100000, 256 * mem::kPageSize);
        nic.setIommu(&iommu);
        // Enable 2 VFs by programming the capability like a PF driver.
        nic.sriovCap().setNumVfs(2);
        nic.sriovCap().setVfEnable(true);
        enableMaster(nic.pf());
    }

    void
    enableMaster(pci::PciFunction &fn)
    {
        fn.config().write(pci::cfg::kCommand,
                          pci::cfg::kCmdMemEnable
                              | pci::cfg::kCmdBusMaster,
                          2);
    }

    void
    armPool(Pool pool, unsigned bufs = 32)
    {
        enableMaster(nic.functionOf(pool));
        iommu.attach(nic.functionOf(pool).rid(), map);
        for (unsigned i = 0; i < bufs; ++i)
            nic.rxRing(pool).post(i * 2048);
    }

    sim::EventQueue eq;
    SriovNic nic;
    mem::Iommu iommu;
    mem::GuestPhysMap map{"g"};
};

TEST_F(SriovNicTest, VfEnableCreatesFunctions)
{
    EXPECT_EQ(nic.numVfs(), 2u);
    EXPECT_EQ(nic.poolCount(), 3u);
    ASSERT_NE(nic.vf(0), nullptr);
    EXPECT_TRUE(nic.vf(0)->isVf());
    EXPECT_EQ(nic.vf(0)->rid(),
              nic.sriovCap().vfRid(nic.pf().rid(), 0));
    EXPECT_EQ(nic.vf(0)->deviceId(), 0x10ca);
}

TEST_F(SriovNicTest, VfDisableDestroysFunctions)
{
    bool removing_seen = false;
    nic.onVfsRemoving([&]() { removing_seen = true; });
    nic.sriovCap().setVfEnable(false);
    EXPECT_TRUE(removing_seen);
    EXPECT_EQ(nic.numVfs(), 0u);
    EXPECT_EQ(nic.poolCount(), 1u);
}

TEST_F(SriovNicTest, ClassifiedRxLandsInVfPool)
{
    armPool(nic.vfPool(0));
    nic.setPoolFilter(nic.vfPool(0), MacAddr::make(1, 1));
    nic.receive(udpPacket(MacAddr::make(1, 1)));
    eq.runAll();
    auto done = nic.drainRx(nic.vfPool(0));
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].pkt.payloadBytes(), 1472u);
    EXPECT_EQ(nic.poolStats(nic.vfPool(0)).rx_frames.value(), 1u);
}

TEST_F(SriovNicTest, UnmatchedFrameDropsWithoutDefaultPool)
{
    nic.receive(udpPacket(MacAddr::make(8, 8)));
    eq.runAll();
    EXPECT_EQ(nic.rxDropNoMatch(), 1u);
}

TEST_F(SriovNicTest, DefaultPoolCatchesUnmatched)
{
    armPool(0);
    nic.setDefaultPool(Pool(0));
    nic.receive(udpPacket(MacAddr::make(8, 8)));
    eq.runAll();
    EXPECT_EQ(nic.drainRx(0).size(), 1u);
}

TEST_F(SriovNicTest, RingDryDropsAndCounts)
{
    armPool(nic.vfPool(0), /*bufs=*/1);
    nic.setPoolFilter(nic.vfPool(0), MacAddr::make(1, 1));
    nic.receive(udpPacket(MacAddr::make(1, 1)));
    nic.receive(udpPacket(MacAddr::make(1, 1)));
    eq.runAll();
    EXPECT_EQ(nic.drainRx(nic.vfPool(0)).size(), 1u);
    EXPECT_EQ(nic.poolStats(nic.vfPool(0)).rx_drop_ring.value(), 1u);
}

TEST_F(SriovNicTest, BusMasterOffDrops)
{
    // Pool armed but bus mastering left disabled on the VF.
    iommu.attach(nic.functionOf(nic.vfPool(0)).rid(), map);
    nic.rxRing(nic.vfPool(0)).post(0);
    nic.setPoolFilter(nic.vfPool(0), MacAddr::make(1, 1));
    nic.receive(udpPacket(MacAddr::make(1, 1)));
    eq.runAll();
    EXPECT_EQ(nic.poolStats(nic.vfPool(0)).rx_drop_master.value(), 1u);
}

TEST_F(SriovNicTest, IommuFaultDrops)
{
    enableMaster(nic.functionOf(nic.vfPool(0)));
    // RID not attached to any domain: DMA must fault, not land.
    nic.rxRing(nic.vfPool(0)).post(0);
    nic.setPoolFilter(nic.vfPool(0), MacAddr::make(1, 1));
    nic.receive(udpPacket(MacAddr::make(1, 1)));
    eq.runAll();
    EXPECT_EQ(nic.poolStats(nic.vfPool(0)).rx_drop_iommu.value(), 1u);
    EXPECT_EQ(iommu.faults().value(), 1u);
}

TEST_F(SriovNicTest, ItrThrottlesInterruptRate)
{
    armPool(nic.vfPool(0), 256);
    nic.setPoolFilter(nic.vfPool(0), MacAddr::make(1, 1));
    nic.setItr(nic.vfPool(0), 1000);    // 1 kHz

    // MSI-X entry armed so interrupts can fire.
    auto &vf = *nic.vf(0);
    int fired = 0;
    vf.setMsiSink([&](pci::Rid, const pci::MsiMessage &) { ++fired; });
    vf.msix()->programEntry(0, pci::MsiMessage::forVector(0, 0x41));
    vf.msix()->maskEntry(0, false);
    vf.msix()->setEnable(true);

    // 100 frames over 10 ms: at 1 kHz at most ~11 interrupts.
    for (int i = 0; i < 100; ++i) {
        eq.scheduleIn(sim::Time::us(100 * i), [this]() {
            nic.receive(udpPacket(MacAddr::make(1, 1)));
        });
    }
    eq.runAll();
    EXPECT_GE(fired, 9);
    EXPECT_LE(fired, 12);
    EXPECT_EQ(nic.drainRx(nic.vfPool(0)).size(), 100u);
}

TEST_F(SriovNicTest, InternalLoopbackCrossesDmaTwice)
{
    armPool(nic.vfPool(0));
    armPool(nic.vfPool(1));
    nic.setPoolFilter(nic.vfPool(0), MacAddr::make(1, 1));
    nic.setPoolFilter(nic.vfPool(1), MacAddr::make(1, 2));

    std::uint64_t before = nic.dma().transfers();
    nic.transmit(nic.vfPool(0), udpPacket(MacAddr::make(1, 2)));
    eq.runAll();
    EXPECT_EQ(nic.dma().transfers() - before, 2u);    // fetch + deliver
    EXPECT_EQ(nic.drainRx(nic.vfPool(1)).size(), 1u);
    EXPECT_EQ(nic.poolStats(nic.vfPool(0)).tx_frames.value(), 1u);
}

TEST_F(SriovNicTest, TxBacklogCapDrops)
{
    armPool(nic.vfPool(0));
    nic.setPoolFilter(nic.vfPool(0), MacAddr::make(1, 1));
    for (std::size_t i = 0; i < NicPort::kTxBacklogCap + 100; ++i)
        nic.transmit(nic.vfPool(0), udpPacket(MacAddr::make(9, 9), 64));
    EXPECT_GT(nic.poolStats(nic.vfPool(0)).tx_dropped.value(), 0u);
    eq.runAll();
}

TEST_F(SriovNicTest, MailboxPerVf)
{
    MboxMessage msg;
    msg.type = MboxMessage::Type::SetMac;
    msg.payload = 42;
    int pf_got = 0;
    nic.mailbox(0).to_pf.setDoorbell(
        [&](const MboxMessage &m) { pf_got += m.payload == 42; });
    EXPECT_TRUE(nic.mailbox(0).to_pf.post(msg));
    EXPECT_EQ(pf_got, 1);
}

TEST(VmdqNic, QueuesShareThePfRid)
{
    sim::EventQueue eq;
    VmdqNic nic(eq, "vmdq", pci::Bdf{2, 0, 0});
    EXPECT_EQ(nic.queueCount(), 8u);
    for (unsigned q = 0; q < nic.queueCount(); ++q)
        EXPECT_EQ(nic.functionOf(Pool(q)).rid(), nic.pf().rid());
}

TEST(VmdqNic, PerQueueMsixEntries)
{
    sim::EventQueue eq;
    VmdqNic nic(eq, "vmdq", pci::Bdf{2, 0, 0});
    nic.pf().config().write(pci::cfg::kCommand,
                            pci::cfg::kCmdMemEnable
                                | pci::cfg::kCmdBusMaster,
                            2);
    std::vector<std::uint8_t> vecs;
    nic.pf().setMsiSink([&](pci::Rid, const pci::MsiMessage &m) {
        vecs.push_back(m.vector());
    });
    auto &mx = *nic.pf().msix();
    mx.setEnable(true);
    for (unsigned q = 0; q < 3; ++q) {
        mx.programEntry(q, pci::MsiMessage::forVector(0, 0x40 + q));
        mx.maskEntry(q, false);
    }
    nic.rxRing(1).post(0);
    nic.setPoolFilter(1, MacAddr::make(1, 1));
    nic.receive(udpPacket(MacAddr::make(1, 1)));
    eq.runAll();
    ASSERT_EQ(vecs.size(), 1u);
    EXPECT_EQ(vecs[0], 0x41);
}

TEST(PlainNic, SinglePool)
{
    sim::EventQueue eq;
    PlainNic nic(eq, "eth", pci::Bdf{3, 0, 0});
    EXPECT_EQ(nic.poolCount(), 1u);
    EXPECT_EQ(&nic.functionOf(0), &nic.pf());
}

TEST_F(SriovNicTest, BroadcastWithoutFilterIsDropped)
{
    armPool(nic.vfPool(0));
    nic.setPoolFilter(nic.vfPool(0), MacAddr::make(1, 1));
    nic.receive(udpPacket(MacAddr::broadcast()));
    eq.runAll();
    EXPECT_EQ(nic.rxDropNoMatch(), 1u);
}

TEST_F(SriovNicTest, ReenableRebuildsVfs)
{
    nic.sriovCap().setVfEnable(false);
    EXPECT_EQ(nic.numVfs(), 0u);
    nic.sriovCap().setNumVfs(5);
    nic.sriovCap().setVfEnable(true);
    EXPECT_EQ(nic.numVfs(), 5u);
    EXPECT_EQ(nic.poolCount(), 6u);
    // Fresh VFs come up without bus mastering.
    EXPECT_FALSE(nic.vf(4)->busMasterEnabled());
}

TEST_F(SriovNicTest, VlanTaggedSteering)
{
    armPool(nic.vfPool(0));
    armPool(nic.vfPool(1));
    nic.setPoolFilter(nic.vfPool(0), MacAddr::make(1, 1), 10);
    nic.setPoolFilter(nic.vfPool(1), MacAddr::make(1, 1), 20);
    Packet p = udpPacket(MacAddr::make(1, 1));
    p.vlan = 20;
    nic.receive(p);
    eq.runAll();
    EXPECT_EQ(nic.drainRx(nic.vfPool(1)).size(), 1u);
    EXPECT_EQ(nic.rxPending(nic.vfPool(0)), 0u);
}

TEST_F(SriovNicTest, ItrZeroMeansImmediateInterrupts)
{
    armPool(nic.vfPool(0), 64);
    nic.setPoolFilter(nic.vfPool(0), MacAddr::make(1, 1));
    nic.setItr(nic.vfPool(0), 0);
    auto &vf = *nic.vf(0);
    int fired = 0;
    vf.setMsiSink([&](pci::Rid, const pci::MsiMessage &) { ++fired; });
    vf.msix()->programEntry(0, pci::MsiMessage::forVector(0, 0x41));
    vf.msix()->maskEntry(0, false);
    vf.msix()->setEnable(true);
    for (int i = 0; i < 5; ++i) {
        nic.receive(udpPacket(MacAddr::make(1, 1)));
        eq.runAll();    // complete each DMA before the next arrival
    }
    EXPECT_EQ(fired, 5);
}
