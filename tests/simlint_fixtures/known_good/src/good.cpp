// Known-good fixture: the same shapes as the known-bad corpus, written
// the way the codebase wants them — or waived with a reasoned
// suppression. simlint must report zero findings here.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <unordered_map>
#include <vector>

struct Queue
{
    template <typename F> void scheduleAt(double, F &&) {}
};

struct Component
{
    std::unordered_map<std::uint64_t, int> by_id;
    std::vector<std::uint64_t> order;    // insertion order, iterable

    int
    sumDeterministic() const
    {
        // Iterate the ordered mirror, point-lookup the map.
        int sum = 0;
        for (std::uint64_t id : order)
            sum += by_id.at(id);
        return sum;
    }

    std::vector<std::uint64_t>
    drainSorted()
    {
        // Hash order never escapes: snapshot and sort.
        std::vector<std::uint64_t> out;
        // simlint:allow(no-unordered-iteration): sorted before return
        for (const auto &[id, v] : by_id)
            out.push_back(id);
        std::sort(out.begin(), out.end());
        return out;
    }
};

double
hostSideTimer()
{
    // Perf sidecar timing measures the host, not the simulation.
    // simlint:allow(no-wallclock): host-side perf timing only
    auto t0 = std::chrono::steady_clock::now();
    // simlint:allow(no-wallclock): host-side perf timing only
    return std::chrono::duration<double>(
               // simlint:allow(no-wallclock): host-side perf timing only
               std::chrono::steady_clock::now() - t0)
        .count();
}

void
scheduleExplicit(Queue &eq)
{
    int local = 0;
    eq.scheduleAt(1.0, [&local]() { ++local; });
}

struct HotPath
{
    std::vector<int> ring;

    // simlint: hot
    void
    push(int v)
    {
        // simlint:allow(hot-path-alloc): ring warm-up growth only
        ring.push_back(v);
    }
};
