// Known-bad fixture: iterating an unordered container. Hash order is
// library- and insertion-dependent; anything it feeds (event schedule,
// report rows) loses bit-for-bit determinism.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

struct Table
{
    std::unordered_map<std::uint64_t, int> by_id;
    std::unordered_set<std::uint64_t> seen;
};

int
sumAll(Table &t)
{
    int sum = 0;
    for (const auto &[id, v] : t.by_id)    // BAD: range-for over u-map
        sum += v;
    for (auto it = t.seen.begin(); it != t.seen.end(); ++it)    // BAD
        sum += int(*it);
    return sum;
}

bool
lookupIsFine(Table &t, std::uint64_t id)
{
    // Point lookups don't observe hash order: no finding here.
    return t.by_id.find(id) != t.by_id.end();
}
