// Known-bad fixture: allocation inside a `// simlint: hot` function.
// The wire→L2→ring→DMA→MSI-X datapath must not allocate in steady
// state (the bench operator-new gate enforces this at runtime).
#include <cstdint>
#include <memory>
#include <vector>

struct Frame
{
    std::uint32_t bytes;
};

struct Path
{
    std::vector<Frame> backlog;

    // simlint: hot
    void
    deliver(const Frame &f)
    {
        backlog.push_back(f);                        // BAD: growth
        auto *copy = new Frame(f);                   // BAD: new
        delete copy;
        auto boxed = std::make_unique<Frame>(f);     // BAD: make_unique
        (void)boxed;
    }

    // Not annotated: the rule stays quiet even though it allocates.
    void
    coldSetup()
    {
        backlog.reserve(1024);
    }
};
