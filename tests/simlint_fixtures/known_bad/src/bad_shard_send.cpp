// Known-bad fixture: a component pushing frames straight into a raw
// cross-island channel. Every line marked BAD must produce a
// shard-channel finding: outside src/sim/shard_* and nic::Wire, a
// ShardChannel push carries no lookahead contract, so the receiving
// island may already have executed past the message's due time — a
// silent causality violation. Cross-shard traffic must ride the wire.

struct Frame
{
    unsigned long long due_ps = 0;
    int payload = 0;
};

struct RogueSender
{
    sriov::sim::ShardChannel<Frame> *ch = nullptr;            // BAD

    void
    blast(unsigned long long now_ps)
    {
        // Due "now": zero lookahead, conservative sync is blind to it.
        ch->push(Frame{now_ps, 1});
    }
};

void
bindRawEdge(sriov::sim::ShardEdge &edge)                      // BAD
{
    (void)edge;
}
