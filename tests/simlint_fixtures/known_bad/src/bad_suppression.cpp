// Known-bad fixture: malformed suppressions are findings themselves,
// so waivers stay auditable.
#include <chrono>

double
now1()
{
    // simlint:allow(no-wallclock)
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

double
now2()
{
    // simlint:allow(not-a-real-rule): reason text
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
