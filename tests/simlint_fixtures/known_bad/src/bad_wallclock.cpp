// Known-bad fixture: every line marked BAD below must produce a
// no-wallclock finding. Host time and ambient randomness are banned
// under src/ — simulated components read sim::Time and sim::Random.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

double
hostSeconds()
{
    auto t0 = std::chrono::steady_clock::now();               // BAD
    auto t1 = std::chrono::system_clock::now();               // BAD
    (void)t1;
    return std::chrono::duration<double>(
               std::chrono::high_resolution_clock::now() - t0)  // BAD
        .count();
}

int
ambientRandom()
{
    std::random_device rd;                                    // BAD
    std::mt19937 gen(rd());                                   // BAD
    std::srand(unsigned(time(nullptr)));                      // BAD (x2)
    return rand();                                            // BAD
}
