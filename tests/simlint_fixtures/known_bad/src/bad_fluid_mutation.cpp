// Known-bad fixture: a component reaching into the fluid settlement
// ledger from unannotated sites. Every line marked BAD must produce a
// fluid-boundary finding: the equivalence contract (DESIGN.md §14)
// rests on the ledger witnessing every send and flow birth/death, so
// an unblessed mutation can fabricate a steadiness certificate the
// probe protocol never verified. Legitimate touch points carry a
// `// simlint: fluid-settle` annotation above the function.

void
fabricateSteadiness(unsigned flow, unsigned long long now_ps)
{
    sriov::sim::FlowLedger *l = sriov::sim::fluidLedger();    // BAD, BAD
    l->onSend(flow, sriov::sim::Time::ps(now_ps));
}

void
skewGrid(sriov::sim::FlowLedger &ledger)                      // BAD
{
    // Shifting the send grid without the director's warp certificate:
    // every later closed-form count is built on a lie.
    ledger.warpBy(sriov::sim::Time::us(3));                   // BAD
}
