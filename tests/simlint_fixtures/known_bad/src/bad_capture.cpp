// Known-bad fixture: default captures in lambdas handed to the event
// queue. By the time the event fires, a defaulted reference capture is
// a dangling bug the slot map cannot catch.
struct Queue
{
    template <typename F> void scheduleAt(double, F &&) {}
    template <typename F> void scheduleIn(double, F &&) {}
};

void
scheduleWork(Queue &eq)
{
    int local = 0;
    eq.scheduleAt(1.0, [&]() { ++local; });          // BAD: [&]
    eq.scheduleIn(2.0, [=]() { (void)local; });      // BAD: [=]
    eq.scheduleAt(3.0, [&, local]() { (void)local; });    // BAD: [&,..]
    eq.scheduleAt(4.0, [&local]() { ++local; });     // ok: explicit
}
