/**
 * @file
 * Tests for the conservative parallel shard engine: the schedule must
 * depend only on simulated times (identical per-island event streams
 * for any worker count), idle islands must terminate via lookahead
 * creep, and the Testbed's sharded machine must produce byte-identical
 * digests at --shards=1/2/4 — the determinism contract of DESIGN.md
 * §13.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/determinism.hpp"
#include "core/testbed.hpp"
#include "nic/wire.hpp"
#include "sim/event_queue.hpp"
#include "sim/log.hpp"
#include "sim/shard.hpp"
#include "sim/shard_engine.hpp"
#include "sim/thinning.hpp"

using namespace sriov;

namespace {

struct QuietLogs
{
    QuietLogs() { sim::setLogLevel(sim::LogLevel::Quiet); }
};
QuietLogs quiet_logs;

const nic::Wire::Params kWire{10e9, sim::Time::us(5)};

nic::Packet
makePacket(std::uint16_t tag)
{
    nic::Packet pkt;
    pkt.dst = nic::MacAddr::make(9, 1);
    pkt.src = nic::MacAddr::make(9, tag);
    pkt.bytes = nic::frame::udpFrame(64);
    return pkt;
}

struct Bouncer final : nic::WireEndpoint
{
    nic::Wire *wire = nullptr;
    nic::Packet pong;

    void
    receive(const nic::Packet &) override
    {
        wire->send(*this, pong);
    }
};

struct PingResult
{
    std::uint64_t crossings = 0;
    std::uint64_t events = 0;
    std::uint64_t digest = 0;
};

/** One frame ping-ponging across two islands for @p sim_t. */
PingResult
runPing(unsigned workers, sim::Time sim_t)
{
    sim::EventQueue eq_a, eq_b;
    sim::ShardEngine engine(workers);
    unsigned ia = engine.addIsland(eq_a);
    unsigned ib = engine.addIsland(eq_b);
    nic::Wire wire(eq_a, eq_b, engine, ia, ib, kWire);
    Bouncer a, b;
    a.wire = b.wire = &wire;
    a.pong = b.pong = makePacket(2);
    wire.connect(a, b);
    wire.send(a, a.pong);
    engine.runUntil(sim_t);
    return {wire.delivered(), engine.executedEvents(),
            engine.foldedDigest()};
}

} // namespace

TEST(ShardEngine, PingMatchesSingleQueueSchedule)
{
    // The sharded wire computes the same analytic delivery times as the
    // thin single-queue wire, so the crossing count must be identical.
    sim::EventQueue eq;
    nic::Wire wire(eq, kWire);
    Bouncer a, b;
    a.wire = b.wire = &wire;
    a.pong = b.pong = makePacket(2);
    wire.connect(a, b);
    wire.send(a, a.pong);
    eq.runUntil(sim::Time::ms(20));

    PingResult sharded = runPing(1, sim::Time::ms(20));
    EXPECT_EQ(sharded.crossings, wire.delivered());
    EXPECT_GT(sharded.crossings, 1000u);
}

TEST(ShardEngine, ScheduleInvariantAcrossWorkerCounts)
{
    PingResult w1 = runPing(1, sim::Time::ms(20));
    PingResult w2 = runPing(2, sim::Time::ms(20));
    PingResult w4 = runPing(4, sim::Time::ms(20));
    EXPECT_EQ(w1.crossings, w2.crossings);
    EXPECT_EQ(w1.crossings, w4.crossings);
    EXPECT_EQ(w1.events, w2.events);
    EXPECT_EQ(w1.events, w4.events);
    EXPECT_EQ(w1.digest, w2.digest);
    EXPECT_EQ(w1.digest, w4.digest);
}

TEST(ShardEngine, IdleIslandsTerminateAndPinClocks)
{
    // No traffic at all: termination relies purely on lookahead creep
    // (promises walking to the deadline), and both clocks must land
    // exactly on it.
    sim::EventQueue eq_a, eq_b;
    sim::ShardEngine engine(2);
    unsigned ia = engine.addIsland(eq_a);
    unsigned ib = engine.addIsland(eq_b);
    nic::Wire wire(eq_a, eq_b, engine, ia, ib, kWire);
    Bouncer a, b;
    wire.connect(a, b);
    const sim::Time deadline = sim::Time::ms(1);
    EXPECT_EQ(engine.runUntil(deadline), 0u);
    EXPECT_EQ(eq_a.now(), deadline);
    EXPECT_EQ(eq_b.now(), deadline);
    EXPECT_GE(engine.promiseOf(ia), deadline);
    EXPECT_GE(engine.promiseOf(ib), deadline);

    // A second window re-arms the promises and terminates again.
    EXPECT_EQ(engine.runUntil(sim::Time::ms(2)), 0u);
    EXPECT_EQ(eq_a.now(), sim::Time::ms(2));
}

namespace {

struct Recorder final : nic::WireEndpoint
{
    std::vector<std::uint16_t> *order = nullptr;

    void
    receive(const nic::Packet &pkt) override
    {
        order->push_back(std::uint16_t(pkt.src.value & 0xffff));
    }
};

struct Mute final : nic::WireEndpoint
{
    void receive(const nic::Packet &) override {}
};

/** Two sender islands firing simultaneous frames at one receiver:
 *  every delivery ties in simulated time, so the arrival order is
 *  pure tie-break policy. */
std::vector<std::uint16_t>
runTieFanIn(unsigned workers)
{
    sim::EventQueue eq_a, eq_b, eq_c;
    sim::ShardEngine engine(workers);
    unsigned ia = engine.addIsland(eq_a);
    unsigned ib = engine.addIsland(eq_b);
    unsigned ic = engine.addIsland(eq_c);
    nic::Wire wac(eq_a, eq_c, engine, ia, ic, kWire);
    nic::Wire wbc(eq_b, eq_c, engine, ib, ic, kWire);
    Mute a, b;
    Recorder ca, cb;
    std::vector<std::uint16_t> order;
    ca.order = cb.order = &order;
    wac.connect(a, ca);
    wbc.connect(b, cb);
    for (unsigned i = 0; i < 50; ++i) {
        eq_a.scheduleIn(sim::Time::us(10 * i), [&wac, &a]() {
            wac.send(a, makePacket(0xaa));
        });
        eq_b.scheduleIn(sim::Time::us(10 * i), [&wbc, &b]() {
            wbc.send(b, makePacket(0xbb));
        });
    }
    engine.runUntil(sim::Time::ms(2));
    return order;
}

} // namespace

TEST(ShardEngine, TieBreakDeterministicAcrossWorkerCounts)
{
    std::vector<std::uint16_t> w1 = runTieFanIn(1);
    std::vector<std::uint16_t> w2 = runTieFanIn(2);
    std::vector<std::uint16_t> w3 = runTieFanIn(3);
    ASSERT_EQ(w1.size(), 100u);
    EXPECT_EQ(w1, w2);
    EXPECT_EQ(w1, w3);
    // Identical due times resolve by edge registration order: the a->c
    // edge was connected first, so each simultaneous pair arrives
    // a-then-b.
    EXPECT_EQ(w1[0], 0xaau);
    EXPECT_EQ(w1[1], 0xbbu);
}

TEST(ShardEngine, ObserverForcesSequential)
{
    struct NullObserver final : sim::EventQueue::Observer
    {
        void onSchedulePast(sim::Time, sim::Time) override {}
        void onExecute(sim::Time, sim::Time, std::uint64_t,
                       const char *) override
        {
        }
    };
    sim::EventQueue eq_a, eq_b;
    sim::ShardEngine engine(4);
    engine.addIsland(eq_a);
    engine.addIsland(eq_b);
    EXPECT_FALSE(engine.forcesSequential());
    NullObserver obs;
    eq_a.setObserver(&obs);
    EXPECT_TRUE(engine.forcesSequential());
    eq_a.setObserver(nullptr);
    EXPECT_FALSE(engine.forcesSequential());
}

namespace {

/** A small sharded Testbed workload; returns its order fingerprint. */
check::RunDigest
runTestbedWorkload(unsigned shards)
{
    sim::ShardScope scope(shards);
    core::Testbed::Params p;
    p.num_ports = 2;
    core::Testbed tb(p);
    for (unsigned i = 0; i < 4; ++i) {
        auto &g = tb.addGuest(vmm::DomainType::Hvm,
                              core::Testbed::NetMode::Sriov);
        tb.startUdpToGuest(g, 200e6);
    }
    tb.run(sim::Time::ms(50));
    return check::RunDigest{tb.orderDigest(), tb.executedEvents()};
}

} // namespace

TEST(ShardTestbed, DigestIdenticalAcrossShardCounts)
{
    check::RunDigest s1 = runTestbedWorkload(1);
    check::RunDigest s2 = runTestbedWorkload(2);
    check::RunDigest s4 = runTestbedWorkload(4);
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(s1, s4);
    EXPECT_GT(s1.events, 10000u);
}

TEST(ShardTestbed, DigestIdenticalAcrossShardCountsUnthinned)
{
    // The shards x thin corner of the determinism matrix: exact
    // per-hop simulation sharded two ways. Thinning changes the event
    // population, so the digests here differ from the thinned test
    // above — the contract is only that both sharded runs agree with
    // the sequential run of the *same* mode.
    sim::ThinningScope exact(false);
    check::RunDigest s1 = runTestbedWorkload(1);
    check::RunDigest s2 = runTestbedWorkload(2);
    EXPECT_EQ(s1, s2);
    EXPECT_GT(s1.events, 10000u);
}

TEST(ShardTestbed, RunTwiceAuditPerShardCount)
{
    for (unsigned shards : {1u, 2u}) {
        auto result = check::DeterminismHarness::runTwice(
            [shards](unsigned) { return runTestbedWorkload(shards); });
        EXPECT_TRUE(result.match())
            << "shards=" << shards << ": " << result.toString();
    }
}

TEST(ShardTestbed, ShardedMeasurementsMatchAcrossShardCounts)
{
    // Beyond the schedule: the paper-facing numbers (throughput, CPU
    // attribution) must be bit-equal across shard counts.
    auto measure = [](unsigned shards) {
        sim::ShardScope scope(shards);
        core::Testbed::Params p;
        p.num_ports = 1;
        core::Testbed tb(p);
        auto &g = tb.addGuest(vmm::DomainType::Hvm,
                              core::Testbed::NetMode::Sriov);
        tb.startUdpToGuest(g, 500e6);
        return tb.measure(sim::Time::ms(20), sim::Time::ms(50));
    };
    core::Testbed::Measurement m1 = measure(1);
    core::Testbed::Measurement m4 = measure(4);
    EXPECT_EQ(m1.total_goodput_bps, m4.total_goodput_bps);
    EXPECT_EQ(m1.cpu_by_tag, m4.cpu_by_tag);
}
