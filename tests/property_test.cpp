/**
 * @file
 * Property-based tests: system-level invariants checked across
 * parameter sweeps and seeded random configurations rather than
 * single examples.
 */

#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"

using namespace sriov;
using namespace sriov::core;

namespace {

struct QuietLogs
{
    QuietLogs() { sim::setLogLevel(sim::LogLevel::Quiet); }
};
QuietLogs quiet_logs;

} // namespace

/**
 * Packet conservation: every frame a client offers to a guest is
 * either delivered to the application or visible in exactly one drop
 * counter (wire TX queue, NIC ring, NIC unmatched, socket buffer) —
 * modulo the small number still in flight when the clock stops.
 */
class Conservation
    : public ::testing::TestWithParam<std::tuple<const char *, double>>
{
};

TEST_P(Conservation, EveryPacketIsDeliveredOrCounted)
{
    auto [policy, offered] = GetParam();
    Testbed::Params p;
    p.num_ports = 1;
    p.opts = OptimizationSet::maskEoi();
    p.opts.aic = std::string(policy) == "AIC";
    p.itr = policy;
    Testbed tb(p);
    auto &g = tb.addGuest(vmm::DomainType::Hvm, Testbed::NetMode::Sriov);
    auto &snd = tb.startUdpToGuest(g, offered);
    tb.run(sim::Time::sec(3));
    snd.stop();
    tb.run(sim::Time::ms(200));    // drain in-flight work

    std::uint64_t sent = snd.sentPackets();
    std::uint64_t delivered = g.rx->rxPackets();
    const auto &ds = g.vf->deviceStats();
    std::uint64_t dropped = tb.wire(0).dropped() + ds.rx_drop_ring.value()
        + ds.rx_drop_master.value() + ds.rx_drop_iommu.value()
        + tb.port(0).rxDropNoMatch() + g.stack->udpSocketDrops();

    EXPECT_LE(delivered + dropped, sent);
    // In-flight slack: at most a couple of interrupt batches.
    EXPECT_NEAR(double(delivered + dropped), double(sent), 300.0);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyLoad, Conservation,
    ::testing::Combine(::testing::Values("2kHz", "AIC", "1kHz"),
                       ::testing::Values(0.3e9, 1.0e9)));

/**
 * TCP stream integrity: the receiver's cumulative byte count never
 * exceeds what the sender transmitted, the sender never sees ACKs for
 * bytes it did not send, and at quiescence everything sent (minus at
 * most one window) was acknowledged.
 */
class TcpIntegrity : public ::testing::TestWithParam<const char *>
{
};

TEST_P(TcpIntegrity, NoLossNoDuplicationWithinTheWindow)
{
    Testbed::Params p;
    p.num_ports = 1;
    p.opts = OptimizationSet::maskEoi();
    p.itr = GetParam();
    Testbed tb(p);
    auto &g = tb.addGuest(vmm::DomainType::Hvm, Testbed::NetMode::Sriov);
    auto &snd = tb.startTcpToGuest(g);
    tb.run(sim::Time::sec(3));
    EXPECT_LE(snd.ackedBytes(), snd.sentBytes());
    EXPECT_LE(g.rx->rxBytes(), snd.sentBytes());
    snd.stop();
    tb.run(sim::Time::ms(500));
    // Quiesced: all but at most one in-flight window acknowledged.
    EXPECT_LE(snd.sentBytes() - snd.ackedBytes(), 120832u);
    EXPECT_GT(g.rx->rxBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, TcpIntegrity,
                         ::testing::Values("20kHz", "2kHz", "1kHz"));

/**
 * CPU accounting closure: per-tag cycle totals always reconstruct the
 * servers' busy time; nothing is double-counted or lost, whatever mix
 * of guests runs.
 */
TEST(AccountingClosure, TagCyclesMatchBusyTime)
{
    Testbed::Params p;
    p.num_ports = 2;
    p.opts = OptimizationSet::maskEoi();
    Testbed tb(p);
    auto &a = tb.addGuest(vmm::DomainType::Hvm, Testbed::NetMode::Sriov);
    auto &b = tb.addGuest(vmm::DomainType::Pvm, Testbed::NetMode::Pv);
    tb.startUdpToGuest(a, 0.8e9);
    tb.startUdpToGuest(b, 0.5e9);
    tb.run(sim::Time::sec(2));

    auto &hv = tb.server();
    for (unsigned i = 0; i < hv.pcpuCount(); ++i) {
        auto snap = hv.pcpu(i).snapshot();
        double tag_cycles = 0;
        for (const auto &[tag, cycles] : snap.cycles_by_tag)
            tag_cycles += cycles;
        double busy_cycles = snap.busy.toSeconds() * hv.costs().cpu_hz;
        // Each work item quantizes its duration to integer picoseconds
        // (< 0.4 cycles at 2.8 GHz), so allow sub-ppm drift.
        EXPECT_NEAR(tag_cycles, busy_cycles,
                    std::max(100.0, busy_cycles * 1e-6))
            << "pcpu " << i;
    }
}

/**
 * IOMMU isolation: whatever buffer addresses one guest's VF is
 * programmed with, DMA can never land in another guest's memory —
 * translations resolve inside the owner's machine region or fault.
 */
TEST(IommuIsolation, VfDmaStaysInItsDomain)
{
    Testbed::Params p;
    p.num_ports = 1;
    Testbed tb(p);
    auto &a = tb.addGuest(vmm::DomainType::Hvm, Testbed::NetMode::Sriov);
    auto &b = tb.addGuest(vmm::DomainType::Hvm, Testbed::NetMode::Sriov);
    auto &hv = tb.server();

    pci::Rid rid_a = a.vf->function().rid();
    sim::Random rng(0xfeedface);
    for (int i = 0; i < 2000; ++i) {
        mem::Addr gpa = rng.uniformInt(0, (128ull << 20) - 1);
        auto r = hv.iommu().translate(rid_a, gpa, true);
        if (!r.ok())
            continue;
        std::string owner = hv.memory().ownerOf(r.mpa);
        EXPECT_EQ(owner, a.dom->name());
        EXPECT_NE(owner, b.dom->name());
    }
}

/**
 * ITR monotonicity: across the whole load range, a higher offered load
 * never yields a lower AIC interrupt frequency.
 */
TEST(AicMonotonicity, FrequencyIsNondecreasingInLoad)
{
    drivers::AicItr aic;
    double prev = 0;
    for (double pps = 0; pps <= 400e3; pps += 7e3) {
        double hz = aic.updateHz(pps, pps * 1472 * 8);
        EXPECT_GE(hz, prev - 1e-9);
        prev = hz;
    }
}

/**
 * Migration monotonicity: a larger guest never migrates faster, and
 * total pages sent always cover memory at least once.
 */
class MigrationSize : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MigrationSize, TotalTimeGrowsWithMemory)
{
    auto run = [](mem::Addr bytes) {
        sim::EventQueue eq;
        vmm::Hypervisor hv(eq);
        vmm::MigrationManager mm(hv);
        auto &dom = hv.createDomain("vm0", vmm::DomainType::Hvm, bytes);
        vmm::MigrationManager::Params p;
        p.background_dirty_pps = 500;
        vmm::MigrationManager::Result result{};
        bool done = false;
        mm.migrate(dom, p, nullptr, nullptr,
                   [&](const vmm::MigrationManager::Result &r) {
                       result = r;
                       done = true;
                   });
        eq.runUntil(sim::Time::sec(120));
        EXPECT_TRUE(done);
        EXPECT_GE(result.pages_sent, bytes / mem::kPageSize);
        return result.total();
    };
    mem::Addr mb = GetParam();
    sim::Time small = run(mb << 20);
    sim::Time big = run((2 * mb) << 20);
    EXPECT_GT(big, small);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MigrationSize,
                         ::testing::Values(64u, 128u, 256u));

/**
 * Direct I/O vs SR-IOV (paper Sections 1/3): assigning the whole port
 * to one guest (Direct I/O, the SR-IOV predecessor) performs like a
 * VF — SR-IOV's contribution is that seven guests get that performance
 * from one port, which Direct I/O cannot share.
 */
TEST(DirectIo, SriovMatchesDirectIoPerformanceWhileSharing)
{
    // Direct I/O: the guest drives the port's PF (pool 0) directly.
    double direct_bps = 0;
    {
        Testbed::Params p;
        p.num_ports = 1;
        p.opts = OptimizationSet::maskEoi();
        Testbed tb(p);
        auto &hv = tb.server();
        auto &dom = hv.createDomain("dio", vmm::DomainType::Hvm,
                                    128ull << 20);
        guest::GuestKernel kern(hv, dom);
        hv.assignDevice(dom, tb.port(0).pf());
        drivers::VfDriver::Config cfg;
        cfg.mac = Testbed::guestMac(0);
        drivers::VfDriver drv(kern, tb.port(0), nic::Pool(0), cfg);
        drv.setItrPolicy(std::make_unique<drivers::AdaptiveItr>());
        drv.init();
        guest::NetStack stack(kern);
        stack.attachDevice(drv);
        guest::StreamReceiver rx(tb.eq(), stack,
                                 guest::StreamReceiver::Proto::Udp);
        guest::UdpStreamSender snd(tb.eq(), tb.clientStack(0),
                                   Testbed::guestMac(0), 1e9);
        snd.start();
        tb.run(sim::Time::sec(1));
        rx.takeThroughputBps();
        tb.run(sim::Time::sec(2));
        direct_bps = rx.takeThroughputBps();
    }

    // SR-IOV: one of seven possible guests on the identical port.
    double sriov_bps = 0;
    {
        Testbed::Params p;
        p.num_ports = 1;
        p.opts = OptimizationSet::maskEoi();
        Testbed tb(p);
        auto &g = tb.addGuest(vmm::DomainType::Hvm,
                              Testbed::NetMode::Sriov);
        tb.startUdpToGuest(g, 1e9);
        auto m = tb.measure(sim::Time::sec(1), sim::Time::sec(2));
        sriov_bps = m.total_goodput_bps;
        // Sharing is preserved: six more VFs remain assignable.
        EXPECT_EQ(tb.port(0).numVfs(), 7u);
    }
    EXPECT_NEAR(direct_bps, sriov_bps, sriov_bps * 0.02);
    EXPECT_NEAR(sriov_bps / 1e6, 957, 15);
}
