/**
 * @file
 * Unit tests for the driver layer: ITR policies, the VF driver's
 * lifecycle and datapath, the PF driver's mailbox policing, the PV
 * split driver pair, and the VMDq backend.
 */

#include <gtest/gtest.h>

#include "drivers/itr_policy.hpp"
#include "drivers/netback.hpp"
#include "drivers/netfront.hpp"
#include "drivers/pf_driver.hpp"
#include "drivers/vf_driver.hpp"
#include "drivers/vmdq_driver.hpp"
#include "guest/net_stack.hpp"

using namespace sriov;
using namespace sriov::drivers;

TEST(ItrPolicy, StaticReturnsItsFrequency)
{
    StaticItr p(2000);
    EXPECT_DOUBLE_EQ(p.updateHz(1e5, 1e9), 2000);
    EXPECT_DOUBLE_EQ(p.updateHz(0, 0), 2000);
    EXPECT_EQ(p.name(), "2kHz");
}

TEST(ItrPolicy, AdaptiveScalesSmoothlyWithThroughput)
{
    AdaptiveItr p;
    // Calibrated operating points: ~8 kHz at a saturated 1 GbE flow,
    // ~2 kHz at a 1/7th share (paper Figs. 6/7).
    EXPECT_NEAR(p.updateHz(81000, 957e6), 8000, 10);
    EXPECT_NEAR(p.updateHz(11000, 137e6), 2003, 10);
    // Monotonic in between.
    double prev = 0;
    for (double bps = 60e6; bps <= 1e9; bps += 50e6) {
        double hz = p.updateHz(bps / (1472 * 8), bps);
        EXPECT_GE(hz, prev);
        prev = hz;
    }
    // Light traffic: lowest latency, capped by packet rate.
    EXPECT_DOUBLE_EQ(p.updateHz(500, 1e6), 500);
    EXPECT_DOUBLE_EQ(p.updateHz(50000, 10e6), 20000);
}

class AicSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(AicSweep, FrequencyAvoidsBufferOverflow)
{
    double pps = GetParam();
    AicItr aic;
    double hz = aic.updateHz(pps, 0);
    // Packets arriving between interrupts must fit in bufs (with the
    // r headroom) unless the lif floor dominates.
    double per_interval = pps / hz;
    if (hz > aic.params().lif + 1e-9
        && hz < aic.params().max_hz - 1e-9) {
        EXPECT_LE(per_interval,
                  double(aic.bufs()) / aic.params().r * 1.0001);
    }
    EXPECT_GE(hz, aic.params().lif);
    EXPECT_LE(hz, aic.params().max_hz);
}

INSTANTIATE_TEST_SUITE_P(PacketRates, AicSweep,
                         ::testing::Values(0.0, 1e3, 11.3e3, 81.2e3,
                                           240e3, 2e6));

TEST(ItrPolicy, AicMatchesThePaperExample)
{
    // 81.2 kpps (1 GbE of 1472-byte datagrams), bufs=64, r=1.2:
    // IF = 81200 * 1.2 / 64 = 1522 Hz.
    AicItr aic;
    EXPECT_NEAR(aic.updateHz(81200, 957e6), 1522, 1);
}

class DriverRig : public ::testing::Test
{
  protected:
    DriverRig()
        : hv(eq), nic(eq, "eth0", pci::Bdf{1, 0, 0}),
          dom0_kern(hv, hv.dom0())
    {
        nic.setIommu(&hv.iommu());
        pf = std::make_unique<PfDriver>(dom0_kern, nic);
        pf->enableVfs(2);
    }

    /** Build an HVM guest with a VF driver on VF @p vf_index. */
    VfDriver &
    makeVfGuest(unsigned vf_index, nic::MacAddr mac)
    {
        auto &dom = hv.createDomain("vm" + std::to_string(vf_index),
                                    vmm::DomainType::Hvm, 64 << 20);
        kernels.push_back(std::make_unique<guest::GuestKernel>(hv, dom));
        hv.assignDevice(dom, *nic.vf(vf_index));
        VfDriver::Config cfg;
        cfg.mac = mac;
        cfg.name = "eth" + std::to_string(vf_index);
        drivers.push_back(std::make_unique<VfDriver>(
            *kernels.back(), nic, nic.vfPool(vf_index), cfg));
        return *drivers.back();
    }

    sim::EventQueue eq;
    vmm::Hypervisor hv;
    nic::SriovNic nic;
    guest::GuestKernel dom0_kern;
    std::unique_ptr<PfDriver> pf;
    std::vector<std::unique_ptr<guest::GuestKernel>> kernels;
    std::vector<std::unique_ptr<VfDriver>> drivers;
};

TEST_F(DriverRig, PfEnableVfsProgramsTheCapability)
{
    EXPECT_TRUE(nic.sriovCap().vfEnabled());
    EXPECT_EQ(nic.numVfs(), 2u);
}

TEST_F(DriverRig, VfInitBringsLinkUpAndRegistersMac)
{
    auto &drv = makeVfGuest(0, nic::MacAddr::make(1, 1));
    EXPECT_FALSE(drv.linkUp());
    drv.init();
    EXPECT_TRUE(drv.linkUp());
    // Bus mastering enabled through config space.
    EXPECT_TRUE(nic.vf(0)->busMasterEnabled());
    // Ring fully posted.
    EXPECT_EQ(nic.rxRing(nic.vfPool(0)).available(), 1024u);
    // MAC registered via the mailbox; the PF driver programmed the
    // on-NIC switch.
    EXPECT_EQ(pf->mailboxRequests(), 1u);
    nic::Packet p;
    p.dst = nic::MacAddr::make(1, 1);
    p.bytes = nic::frame::udpFrame(100);
    EXPECT_EQ(*nic.l2().classify(p), nic.vfPool(0));
}

TEST_F(DriverRig, VfShutdownReleasesEverything)
{
    auto &drv = makeVfGuest(0, nic::MacAddr::make(1, 1));
    drv.init();
    drv.shutdown();
    EXPECT_FALSE(drv.linkUp());
    EXPECT_FALSE(nic.vf(0)->busMasterEnabled());
    EXPECT_TRUE(nic.rxRing(nic.vfPool(0)).empty());
    nic::Packet p;
    p.dst = nic::MacAddr::make(1, 1);
    p.bytes = nic::frame::udpFrame(100);
    EXPECT_FALSE(nic.l2().classify(p).has_value());
}

TEST_F(DriverRig, RxPathDeliversToTheStack)
{
    auto &drv = makeVfGuest(0, nic::MacAddr::make(1, 1));
    drv.init();
    guest::NetStack stack(*kernels[0]);
    stack.attachDevice(drv);
    std::size_t got = 0;
    stack.setUdpReceiver([&](std::uint64_t, std::size_t n) { got += n; });

    nic::Packet p;
    p.dst = nic::MacAddr::make(1, 1);
    p.bytes = nic::frame::udpFrame(1472);
    p.kind = nic::Packet::Kind::Udp;
    nic.receive(p);
    eq.runUntil(eq.now() + sim::Time::ms(200));
    EXPECT_EQ(got, 1u);
    // The buffer was recycled into the ring.
    EXPECT_EQ(nic.rxRing(nic.vfPool(0)).available(), 1024u);
}

TEST_F(DriverRig, ItrSamplerAppliesThePolicy)
{
    auto &drv = makeVfGuest(0, nic::MacAddr::make(1, 1));
    drv.setItrPolicy(std::make_unique<AdaptiveItr>());
    drv.init();
    // Initial rate: light-traffic class.
    EXPECT_DOUBLE_EQ(drv.currentItrHz(), 20000);

    // Feed ~160 Mb/s for the whole first sampling second; the sampler
    // should moderate down from latency mode to ~2.2 kHz.
    for (int i = 0; i < 13500; ++i) {
        eq.scheduleIn(sim::Time::us(std::int64_t(i) * 74), [this]() {
            nic::Packet p;
            p.dst = nic::MacAddr::make(1, 1);
            p.bytes = nic::frame::udpFrame(1472);
            p.kind = nic::Packet::Kind::Udp;
            nic.receive(p);
        });
    }
    eq.runUntil(sim::Time::ms(1100));
    EXPECT_NEAR(drv.currentItrHz(), 2165, 60);
}

TEST_F(DriverRig, StopRxLeavesFramesInTheRing)
{
    auto &drv = makeVfGuest(0, nic::MacAddr::make(1, 1));
    drv.init();
    drv.stopRx();
    nic::Packet p;
    p.dst = nic::MacAddr::make(1, 1);
    p.bytes = nic::frame::udpFrame(1472);
    nic.receive(p);
    eq.runUntil(eq.now() + sim::Time::ms(200));
    // DMA'd but never drained: the driver stopped servicing IRQs.
    EXPECT_EQ(nic.rxPending(nic.vfPool(0)), 1u);
}

TEST_F(DriverRig, PfPolicesBlockedVfs)
{
    pf->blockVf(1, true);
    auto &drv = makeVfGuest(1, nic::MacAddr::make(1, 2));
    drv.init();
    EXPECT_EQ(pf->rejectedRequests(), 1u);
    nic::Packet p;
    p.dst = nic::MacAddr::make(1, 2);
    p.bytes = nic::frame::udpFrame(100);
    EXPECT_FALSE(nic.l2().classify(p).has_value());
}

TEST_F(DriverRig, PfHandlesVlanAndReset)
{
    auto &drv = makeVfGuest(0, nic::MacAddr::make(1, 1));
    drv.init();

    nic::MboxMessage msg;
    msg.type = nic::MboxMessage::Type::SetVlan;
    msg.payload = 42;
    nic.mailbox(0).to_pf.post(msg);
    nic::Packet p;
    p.dst = nic::MacAddr::make(1, 1);
    p.vlan = 42;
    p.bytes = nic::frame::udpFrame(100);
    EXPECT_EQ(*nic.l2().classify(p), nic.vfPool(0));

    msg.type = nic::MboxMessage::Type::Reset;
    nic.mailbox(0).to_pf.post(msg);
    EXPECT_FALSE(nic.l2().classify(p).has_value());
}

TEST_F(DriverRig, PfNotifiesLinkChangesThroughMailboxes)
{
    pf->notifyLinkChange(false);
    // Doorbells with no VF driver listening stay pending (busy).
    EXPECT_TRUE(nic.mailbox(0).to_vf.busy());
}

class PvRig : public ::testing::Test
{
  protected:
    PvRig()
        : hv(eq), phys(eq, "peth0", pci::Bdf{1, 0, 0}),
          dom0_kern(hv, hv.dom0())
    {
        phys.setIommu(&hv.iommu());
        NetbackDriver::Config cfg;
        cfg.num_threads = 2;
        nb = std::make_unique<NetbackDriver>(dom0_kern, cfg);
        nb->attachPhysical(phys);
    }

    guest::NetStack &
    makePvGuest(const std::string &name, nic::MacAddr mac)
    {
        auto &dom = hv.createDomain(name, vmm::DomainType::Hvm, 64 << 20);
        kernels.push_back(std::make_unique<guest::GuestKernel>(hv, dom));
        fronts.push_back(std::make_unique<NetfrontDriver>(
            *kernels.back(), name + "-eth0", mac));
        nb->connectGuest(*fronts.back());
        stacks.push_back(
            std::make_unique<guest::NetStack>(*kernels.back()));
        stacks.back()->attachDevice(*fronts.back());
        return *stacks.back();
    }

    sim::EventQueue eq;
    vmm::Hypervisor hv;
    nic::PlainNic phys;
    guest::GuestKernel dom0_kern;
    std::unique_ptr<NetbackDriver> nb;
    std::vector<std::unique_ptr<guest::GuestKernel>> kernels;
    std::vector<std::unique_ptr<NetfrontDriver>> fronts;
    std::vector<std::unique_ptr<guest::NetStack>> stacks;
};

TEST_F(PvRig, PhysicalRxIsBridgedCopiedAndDelivered)
{
    auto &stack = makePvGuest("vm0", nic::MacAddr::make(1, 1));
    std::size_t got = 0;
    stack.setUdpReceiver([&](std::uint64_t, std::size_t n) { got += n; });

    nic::Packet p;
    p.dst = nic::MacAddr::make(1, 1);
    p.bytes = nic::frame::udpFrame(1472);
    p.kind = nic::Packet::Kind::Udp;
    phys.receive(p);
    eq.runUntil(eq.now() + sim::Time::ms(200));
    EXPECT_EQ(got, 1u);
    EXPECT_EQ(nb->copies(), 1u);
    EXPECT_EQ(fronts[0]->rxPackets(), 1u);
    EXPECT_EQ(fronts[0]->grants().copies(), 1u);
}

TEST_F(PvRig, CopiesDirtyTheGuestForMigration)
{
    auto &stack = makePvGuest("vm0", nic::MacAddr::make(1, 1));
    (void)stack;
    auto &dom = kernels[0]->domain();
    dom.gpmap().enableDirtyLog();
    nic::Packet p;
    p.dst = nic::MacAddr::make(1, 1);
    p.bytes = nic::frame::udpFrame(1472);
    phys.receive(p);
    eq.runUntil(eq.now() + sim::Time::ms(200));
    EXPECT_EQ(dom.gpmap().dirtyPageCount(), 1u);
}

TEST_F(PvRig, GuestTxReachesTheWireSideNic)
{
    auto &stack = makePvGuest("vm0", nic::MacAddr::make(1, 1));
    stack.sendUdp(nic::MacAddr::make(7, 7), 1472, 0);
    eq.runUntil(eq.now() + sim::Time::ms(200));
    EXPECT_EQ(nb->forwardedToWire(), 1u);
    EXPECT_EQ(phys.poolStats(0).tx_frames.value(), 1u);
}

TEST_F(PvRig, InterVmTraversesOneCopy)
{
    auto &a = makePvGuest("vm0", nic::MacAddr::make(1, 1));
    auto &b = makePvGuest("vm1", nic::MacAddr::make(1, 2));
    std::size_t got = 0;
    b.setUdpReceiver([&](std::uint64_t, std::size_t n) { got += n; });
    a.sendUdp(nic::MacAddr::make(1, 2), 1472, 0);
    eq.runUntil(eq.now() + sim::Time::ms(200));
    EXPECT_EQ(got, 1u);
    EXPECT_EQ(nb->forwardedToGuests(), 1u);
    EXPECT_EQ(nb->forwardedToWire(), 0u);
}

TEST_F(PvRig, DisconnectDropsLink)
{
    auto &stack = makePvGuest("vm0", nic::MacAddr::make(1, 1));
    EXPECT_TRUE(fronts[0]->linkUp());
    nb->disconnectGuest(*fronts[0]);
    EXPECT_FALSE(fronts[0]->linkUp());
    EXPECT_FALSE(stack.sendUdp(nic::MacAddr::make(7, 7), 100, 0));
}

TEST_F(PvRig, WorkerBacklogCapDropsBursts)
{
    auto &stack = makePvGuest("vm0", nic::MacAddr::make(1, 1));
    (void)stack;
    // Far more TX than the worker queue admits, all at once.
    std::size_t attempted = 6000, accepted = 0;
    for (std::size_t i = 0; i < attempted; ++i) {
        nic::Packet p;
        p.dst = nic::MacAddr::make(7, 7);
        p.bytes = nic::frame::udpFrame(64);
        if (fronts[0]->transmit(p))
            ++accepted;
    }
    EXPECT_LT(accepted, attempted);
    EXPECT_GT(fronts[0]->txDropped(), 0u);
    eq.runUntil(eq.now() + sim::Time::ms(200));
}

TEST(VmdqBackendTest, QueueAssignmentExhaustsAtSeven)
{
    sim::EventQueue eq;
    vmm::Hypervisor hv(eq);
    nic::VmdqNic nic(eq, "vmdq0", pci::Bdf{2, 0, 0});
    nic.setIommu(&hv.iommu());
    guest::GuestKernel dom0_kern(hv, hv.dom0());
    VmdqBackend backend(dom0_kern, nic, VmdqBackend::Config{});

    std::vector<std::unique_ptr<guest::GuestKernel>> kernels;
    std::vector<std::unique_ptr<NetfrontDriver>> fronts;
    unsigned granted = 0;
    for (unsigned i = 0; i < 9; ++i) {
        auto &dom = hv.createDomain("vm" + std::to_string(i),
                                    vmm::DomainType::Pvm, 64 << 20);
        kernels.push_back(std::make_unique<guest::GuestKernel>(hv, dom));
        fronts.push_back(std::make_unique<NetfrontDriver>(
            *kernels.back(), "eth0", nic::MacAddr::make(1, i + 1)));
        if (backend.assignQueue(*fronts.back()))
            ++granted;
    }
    EXPECT_EQ(granted, 7u);    // 8 queues, dom0 keeps queue 0
    EXPECT_EQ(backend.queuesInUse(), 7u);
}

TEST(VmdqBackendTest, QueueRxFlowsToTheGuest)
{
    sim::EventQueue eq;
    vmm::Hypervisor hv(eq);
    nic::VmdqNic nic(eq, "vmdq0", pci::Bdf{2, 0, 0});
    nic.setIommu(&hv.iommu());
    guest::GuestKernel dom0_kern(hv, hv.dom0());
    VmdqBackend backend(dom0_kern, nic, VmdqBackend::Config{});

    auto &dom = hv.createDomain("vm0", vmm::DomainType::Pvm, 64 << 20);
    guest::GuestKernel kern(hv, dom);
    NetfrontDriver nf(kern, "eth0", nic::MacAddr::make(1, 1));
    ASSERT_TRUE(backend.assignQueue(nf));
    guest::NetStack stack(kern);
    stack.attachDevice(nf);
    std::size_t got = 0;
    stack.setUdpReceiver([&](std::uint64_t, std::size_t n) { got += n; });

    nic::Packet p;
    p.dst = nic::MacAddr::make(1, 1);
    p.bytes = nic::frame::udpFrame(1472);
    p.kind = nic::Packet::Kind::Udp;
    nic.receive(p);
    eq.runUntil(eq.now() + sim::Time::ms(200));
    EXPECT_EQ(got, 1u);
    EXPECT_EQ(backend.framesServiced(), 1u);
    // dom0 paid the protection/translation work.
    EXPECT_GT(hv.dom0Cpu(0).busyTime() + hv.pcpu(0).busyTime(),
              sim::Time());
}

/**
 * Portability property (paper Section 4): the VF driver is identical
 * code across every domain type — HVM guest, PVM guest, bare metal.
 * Only the platform's delivery/charging path differs.
 */
class VfPortability : public ::testing::TestWithParam<vmm::DomainType>
{
};

TEST_P(VfPortability, SameDriverWorksUnmodified)
{
    sim::EventQueue eq;
    vmm::Hypervisor hv(eq);
    nic::SriovNic nic(eq, "eth0", pci::Bdf{1, 0, 0});
    nic.setIommu(&hv.iommu());
    guest::GuestKernel dom0_kern(hv, hv.dom0());
    PfDriver pf(dom0_kern, nic);
    pf.enableVfs(1);

    auto &dom = hv.createDomain("vm0", GetParam(), 64 << 20);
    guest::GuestKernel kern(hv, dom);
    hv.assignDevice(dom, *nic.vf(0));
    VfDriver::Config cfg;
    cfg.mac = nic::MacAddr::make(1, 1);
    VfDriver drv(kern, nic, nic.vfPool(0), cfg);
    drv.init();

    guest::NetStack stack(kern);
    stack.attachDevice(drv);
    std::size_t got = 0;
    stack.setUdpReceiver([&](std::uint64_t, std::size_t n) { got += n; });

    nic::Packet p;
    p.dst = nic::MacAddr::make(1, 1);
    p.bytes = nic::frame::udpFrame(1472);
    p.kind = nic::Packet::Kind::Udp;
    nic.receive(p);
    eq.runUntil(sim::Time::ms(100));
    EXPECT_EQ(got, 1u);

    // Virtualization costs appear only where the platform adds them.
    if (GetParam() == vmm::DomainType::Native)
        EXPECT_DOUBLE_EQ(dom.exits().totalCount(), 0.0);
    else
        EXPECT_GT(dom.exits().totalCount(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(DomainTypes, VfPortability,
                         ::testing::Values(vmm::DomainType::Hvm,
                                           vmm::DomainType::Pvm,
                                           vmm::DomainType::Native));

TEST_F(DriverRig, WatchdogShutsDownMailboxFlooders)
{
    PfDriver::WatchdogPolicy wp;
    wp.enabled = true;
    wp.max_requests = 8;
    pf->setWatchdog(wp);

    auto &drv = makeVfGuest(0, nic::MacAddr::make(1, 1));
    drv.init();
    EXPECT_FALSE(pf->vfBlocked(0));

    // A compromised guest floods SetVlan requests (Section 4.3).
    for (int i = 0; i < 20; ++i) {
        nic::MboxMessage msg;
        msg.type = nic::MboxMessage::Type::SetVlan;
        msg.payload = 1;
        nic.mailbox(0).to_pf.post(msg);
    }
    EXPECT_TRUE(pf->vfBlocked(0));
    EXPECT_EQ(pf->watchdogShutdowns(), 1u);
    // Its filters are gone: traffic no longer reaches the VF.
    nic::Packet p;
    p.dst = nic::MacAddr::make(1, 1);
    p.bytes = nic::frame::udpFrame(100);
    EXPECT_FALSE(nic.l2().classify(p).has_value());
}

TEST_F(DriverRig, WatchdogWindowResetsTheBudget)
{
    PfDriver::WatchdogPolicy wp;
    wp.enabled = true;
    wp.max_requests = 4;
    wp.window = sim::Time::ms(100);
    pf->setWatchdog(wp);
    auto &drv = makeVfGuest(0, nic::MacAddr::make(1, 1));
    drv.init();

    // Stay under the budget in each window: never tripped.
    for (int burst = 0; burst < 5; ++burst) {
        for (int i = 0; i < 3; ++i) {
            nic::MboxMessage msg;
            msg.type = nic::MboxMessage::Type::SetVlan;
            msg.payload = 1;
            nic.mailbox(0).to_pf.post(msg);
        }
        eq.runUntil(eq.now() + sim::Time::ms(150));
    }
    EXPECT_FALSE(pf->vfBlocked(0));
    EXPECT_EQ(pf->watchdogShutdowns(), 0u);
}

TEST_F(DriverRig, LinkChangeEventsReachTheVfDriver)
{
    auto &drv = makeVfGuest(0, nic::MacAddr::make(1, 1));
    drv.init();
    EXPECT_TRUE(drv.linkUp());
    pf->notifyLinkChange(false);
    EXPECT_FALSE(drv.linkUp());
    EXPECT_EQ(drv.pfEvents(), 1u);
    pf->notifyLinkChange(true);
    EXPECT_TRUE(drv.linkUp());
}

TEST_F(DriverRig, PfRemovalQuiescesTheVfDriver)
{
    auto &drv = makeVfGuest(0, nic::MacAddr::make(1, 1));
    drv.init();
    // disableVfs() warns every VF first (Section 4.2), then clears
    // VF Enable; the VF driver must have quiesced by then.
    pf->disableVfs();
    EXPECT_FALSE(drv.isUp());
    EXPECT_EQ(nic.numVfs(), 0u);
}
