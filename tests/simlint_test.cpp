// Tests for the simlint static analyzer (tools/simlint): each rule on
// inline snippets, the suppression grammar, rule selection, and golden
// findings over the known-bad / known-good fixture corpora.
//
// SIMLINT_FIXTURE_DIR is injected by CMake and points at
// tests/simlint_fixtures in the source tree.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "simlint.hpp"

using simlint::Finding;
using simlint::Options;

namespace {

// Lint @p text as if it were a file at @p path (path decides scoping:
// no-wallclock fires only under a src/ component).
std::vector<Finding>
lint(const std::string &text, const std::string &path = "src/x.cpp",
     std::size_t *suppressed = nullptr)
{
    return simlint::lintText(path, text, "", Options{}, suppressed);
}

std::vector<std::string>
rulesOf(const std::vector<Finding> &fs)
{
    std::vector<std::string> out;
    for (const Finding &f : fs)
        out.push_back(f.rule);
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// no-wallclock
// ---------------------------------------------------------------------

TEST(SimlintWallclock, FlagsChronoClocksAndLibcTime)
{
    auto fs = lint("#include <chrono>\n"
                   "auto t = std::chrono::steady_clock::now();\n"
                   "long u = time(nullptr);\n");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_EQ(fs[0].rule, "no-wallclock");
    EXPECT_EQ(fs[0].line, 2);
    EXPECT_EQ(fs[1].line, 3);
}

TEST(SimlintWallclock, OnlyAppliesUnderSrc)
{
    std::string text = "auto t = std::chrono::steady_clock::now();\n";
    EXPECT_EQ(lint(text, "src/a.cpp").size(), 1u);
    EXPECT_EQ(lint(text, "bench/a.cpp").size(), 0u);
    EXPECT_EQ(lint(text, "tests/a.cpp").size(), 0u);
}

TEST(SimlintWallclock, MemberNamedClockIsNotLibcClock)
{
    // Tracer::clock() / obj.time() are member accessors, not wallclock.
    auto fs = lint("void f(Tracer &t) { auto c = t.clock(); }\n"
                   "void g(Obj *o) { o->time(); }\n");
    EXPECT_TRUE(fs.empty());
}

TEST(SimlintWallclock, RandomnessIsFlagged)
{
    auto fs = lint("std::random_device rd;\n"
                   "int x = rand();\n");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_EQ(rulesOf(fs),
              (std::vector<std::string>{"no-wallclock", "no-wallclock"}));
}

// ---------------------------------------------------------------------
// no-unordered-iteration
// ---------------------------------------------------------------------

TEST(SimlintUnordered, FlagsRangeForOverDeclaredMember)
{
    auto fs = lint("#include <unordered_map>\n"
                   "std::unordered_map<int, int> m;\n"
                   "int sum() {\n"
                   "    int s = 0;\n"
                   "    for (const auto &[k, v] : m)\n"
                   "        s += v;\n"
                   "    return s;\n"
                   "}\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "no-unordered-iteration");
    EXPECT_EQ(fs[0].line, 5);
}

TEST(SimlintUnordered, FlagsBeginButNotFindEndIdiom)
{
    auto fs = lint("#include <unordered_set>\n"
                   "std::unordered_set<int> s;\n"
                   "bool has(int k) { return s.find(k) != s.end(); }\n"
                   "auto first() { return s.begin(); }\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].line, 4);
}

TEST(SimlintUnordered, LearnsTypeFromSiblingHeader)
{
    std::string header = "#include <unordered_map>\n"
                         "struct T { std::unordered_map<int,int> m_; };\n";
    std::string source = "int f(T &t) {\n"
                         "    int s = 0;\n"
                         "    for (auto &kv : t.m_) s += kv.second;\n"
                         "    return s;\n"
                         "}\n";
    auto fs = simlint::lintText("src/t.cpp", source, header, Options{});
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "no-unordered-iteration");
}

// ---------------------------------------------------------------------
// explicit-capture
// ---------------------------------------------------------------------

TEST(SimlintCapture, FlagsDefaultCapturesPassedToScheduler)
{
    auto fs = lint("void f(Q &eq) {\n"
                   "    int x = 0;\n"
                   "    eq.scheduleAt(t, [&]() { ++x; });\n"
                   "    eq.scheduleIn(d, [=]() { (void)x; });\n"
                   "    eq.scheduleAt(t, [&, x]() { (void)x; });\n"
                   "}\n");
    ASSERT_EQ(fs.size(), 3u);
    for (const Finding &f : fs)
        EXPECT_EQ(f.rule, "explicit-capture");
}

TEST(SimlintCapture, ExplicitCapturesAndOtherCallsAreFine)
{
    auto fs = lint("void f(Q &eq) {\n"
                   "    int x = 0;\n"
                   "    eq.scheduleAt(t, [&x]() { ++x; });\n"
                   "    eq.scheduleAt(t, [this, x]() { use(x); });\n"
                   "    other.forEach([&]() { ++x; });\n"
                   "}\n");
    EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------
// hot-path-alloc
// ---------------------------------------------------------------------

TEST(SimlintHotAlloc, FlagsAllocOnlyInsideAnnotatedFunction)
{
    auto fs = lint("// simlint: hot\n"
                   "void hot(V &v) {\n"
                   "    v.push_back(1);\n"
                   "    auto *p = new int(2);\n"
                   "}\n"
                   "void cold(V &v) {\n"
                   "    v.push_back(3);\n"
                   "    auto q = std::make_unique<int>(4);\n"
                   "}\n");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_EQ(fs[0].rule, "hot-path-alloc");
    EXPECT_EQ(fs[0].line, 3);
    EXPECT_EQ(fs[1].line, 4);
}

TEST(SimlintHotAlloc, HotRegionEndsAtClosingBrace)
{
    auto fs = lint("// simlint: hot\n"
                   "void hot() { int x = 1; (void)x; }\n"
                   "void after(V &v) { v.resize(10); }\n");
    EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------
// fluid-boundary
// ---------------------------------------------------------------------

TEST(SimlintFluidBoundary, FlagsLedgerMentionOutsideFluidCore)
{
    auto fs = lint("void f() {\n"
                   "    sim::FlowLedger *l = sim::fluidLedger();\n"
                   "    l->onSend(0, now);\n"
                   "}\n");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_EQ(fs[0].rule, "fluid-boundary");
    EXPECT_EQ(fs[0].line, 2);
    EXPECT_EQ(fs[1].line, 2);
}

TEST(SimlintFluidBoundary, SettleAnnotationBlessesTheFunctionBody)
{
    auto fs = lint("// simlint: fluid-settle\n"
                   "void hook() {\n"
                   "    sim::FlowLedger *l = sim::fluidLedger();\n"
                   "    l->warpBy(dt);\n"
                   "}\n"
                   "void rogue() {\n"
                   "    sim::fluidLedger()->warpBy(dt);\n"
                   "}\n");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_EQ(fs[0].rule, "fluid-boundary");
    EXPECT_EQ(fs[0].line, 7);
    EXPECT_EQ(fs[1].line, 7);
}

TEST(SimlintFluidBoundary, FluidCoreAndNonSrcAreOutOfScope)
{
    std::string text = "void f() { sim::fluidLedger()->warpBy(dt); }\n";
    EXPECT_EQ(lint(text, "src/guest/x.cpp").size(), 2u);
    EXPECT_TRUE(lint(text, "src/sim/fluid.cpp").empty());
    EXPECT_TRUE(lint(text, "src/core/fluid_path.cpp").empty());
    EXPECT_TRUE(lint(text, "tests/fluid_test.cpp").empty());
}

TEST(SimlintFluidBoundary, TransitionReportsAreNotPoliced)
{
    // Forcing exact mode is always conservative — components may
    // report transitions freely.
    auto fs = lint(
        "void f() {\n"
        "    sim::fluidTransitionAll(sim::FluidTransition::Drop);\n"
        "}\n");
    EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------

TEST(SimlintSuppress, AllowOnSameOrPreviousLineSilences)
{
    std::size_t suppressed = 0;
    auto fs =
        lint("// simlint:allow(no-wallclock): host-side timing only\n"
             "auto a = std::chrono::steady_clock::now();\n"
             "auto b = std::chrono::steady_clock::now(); "
             "// simlint:allow(no-wallclock): host-side timing only\n",
             "src/x.cpp", &suppressed);
    EXPECT_TRUE(fs.empty());
    EXPECT_EQ(suppressed, 2u);
}

TEST(SimlintSuppress, TwoLinesAboveDoesNotReach)
{
    auto fs = lint("// simlint:allow(no-wallclock): too far away\n"
                   "int gap;\n"
                   "auto t = std::chrono::steady_clock::now();\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "no-wallclock");
}

TEST(SimlintSuppress, MissingReasonIsItselfAFinding)
{
    auto fs = lint("// simlint:allow(no-wallclock)\n"
                   "auto t = std::chrono::steady_clock::now();\n");
    auto rules = rulesOf(fs);
    EXPECT_NE(std::find(rules.begin(), rules.end(), "bad-suppression"),
              rules.end());
    // The malformed directive does not silence the finding either.
    EXPECT_NE(std::find(rules.begin(), rules.end(), "no-wallclock"),
              rules.end());
}

TEST(SimlintSuppress, UnknownRuleNameIsAFinding)
{
    auto fs = lint("// simlint:allow(no-such-rule): reason\n"
                   "int x;\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "bad-suppression");
}

TEST(SimlintSuppress, AllowListCanNameSeveralRules)
{
    std::size_t suppressed = 0;
    auto fs = lint(
        "// simlint:allow(no-wallclock,no-unordered-iteration): both\n"
        "auto t = std::chrono::steady_clock::now();\n",
        "src/x.cpp", &suppressed);
    EXPECT_TRUE(fs.empty());
    EXPECT_EQ(suppressed, 1u);
}

// ---------------------------------------------------------------------
// Rule selection
// ---------------------------------------------------------------------

TEST(SimlintRules, AllRulesAreKnown)
{
    for (const std::string &r : simlint::allRules())
        EXPECT_TRUE(simlint::knownRule(r)) << r;
    EXPECT_FALSE(simlint::knownRule("no-such-rule"));
}

TEST(SimlintRules, SelectionRestrictsFindings)
{
    std::string text = "void f(Q &eq) {\n"
                       "    auto t = std::chrono::steady_clock::now();\n"
                       "    eq.scheduleAt(t, [&]() {});\n"
                       "}\n";
    Options only_capture;
    only_capture.rules = {"explicit-capture"};
    auto fs = simlint::lintText("src/x.cpp", text, "", only_capture);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "explicit-capture");

    Options only_wallclock;
    only_wallclock.rules = {"no-wallclock"};
    fs = simlint::lintText("src/x.cpp", text, "", only_wallclock);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "no-wallclock");
}

// ---------------------------------------------------------------------
// Lexer robustness
// ---------------------------------------------------------------------

TEST(SimlintLexer, IgnoresCommentsStringsAndPreprocessor)
{
    auto fs = lint("// std::chrono::steady_clock::now() in a comment\n"
                   "/* rand() in a block comment */\n"
                   "const char *s = \"time(nullptr)\";\n"
                   "#define NOW std::chrono::steady_clock::now()\n"
                   "R\"(raw rand() string)\";\n");
    EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------
// Fixture corpora (golden findings)
// ---------------------------------------------------------------------

TEST(SimlintFixtures, KnownBadFailsTheGate)
{
    Options opts;
    opts.default_excludes = false;    // the corpus lives under an
                                      // excluded dir by design
    auto r = simlint::runPaths(
        {std::string(SIMLINT_FIXTURE_DIR) + "/known_bad"}, opts);
    EXPECT_EQ(r.files_scanned, 7u);
    EXPECT_EQ(r.findings.size(), 26u);
    EXPECT_EQ(r.suppressed, 0u);

    // Every rule in the pack shows up at least once, so the corpus
    // keeps covering the whole rule pack as it evolves.
    auto rules = rulesOf(r.findings);
    for (const std::string &rule : simlint::allRules())
        EXPECT_NE(std::find(rules.begin(), rules.end(), rule),
                  rules.end())
            << "rule never fires on known_bad: " << rule;

    // Findings come out sorted by (file, line): deterministic output.
    auto sorted = r.findings;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.file != b.file ? a.file < b.file
                                                 : a.line < b.line;
                     });
    for (std::size_t i = 0; i < r.findings.size(); ++i) {
        EXPECT_EQ(r.findings[i].file, sorted[i].file);
        EXPECT_EQ(r.findings[i].line, sorted[i].line);
    }
}

TEST(SimlintFixtures, KnownGoodIsCleanWithReasonedWaivers)
{
    Options opts;
    opts.default_excludes = false;
    auto r = simlint::runPaths(
        {std::string(SIMLINT_FIXTURE_DIR) + "/known_good"}, opts);
    EXPECT_EQ(r.files_scanned, 1u);
    EXPECT_TRUE(r.findings.empty())
        << (r.findings.empty() ? ""
                               : r.findings[0].file + ": "
                                     + r.findings[0].message);
    EXPECT_EQ(r.suppressed, 4u);
}

TEST(SimlintFixtures, DefaultExcludesSkipTheCorpus)
{
    // The same paths with default excludes on: the fixture dir is
    // skipped entirely, so the repo-wide gate never sees known-bad.
    auto r = simlint::runPaths({std::string(SIMLINT_FIXTURE_DIR)},
                               Options{});
    EXPECT_EQ(r.files_scanned, 0u);
    EXPECT_TRUE(r.findings.empty());
}

TEST(SimlintFixtures, JsonReportIsWellFormedish)
{
    Options opts;
    opts.default_excludes = false;
    auto r = simlint::runPaths(
        {std::string(SIMLINT_FIXTURE_DIR) + "/known_bad"}, opts);
    std::string json = simlint::toJson(r);
    EXPECT_NE(json.find("\"schema\": \"simlint/v1\""), std::string::npos);
    EXPECT_NE(json.find("\"findings\""), std::string::npos);
    EXPECT_NE(json.find("no-wallclock"), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}
