/**
 * @file
 * Unit tests for the interrupt subsystem: vector allocation, LAPIC
 * priority semantics, virtual LAPIC exits, event channels, router.
 */

#include <gtest/gtest.h>

#include "intr/event_channel.hpp"
#include "intr/interrupt_router.hpp"
#include "intr/lapic.hpp"
#include "intr/vector_allocator.hpp"
#include "intr/virtual_lapic.hpp"

using namespace sriov::intr;
using sriov::pci::MsiMessage;

TEST(VectorAllocator, AllocatesAboveExceptions)
{
    VectorAllocator va;
    auto v = va.allocate();
    ASSERT_TRUE(v.has_value());
    EXPECT_GE(*v, VectorAllocator::kFirstDynamic);
    EXPECT_TRUE(va.inUse(*v));
}

TEST(VectorAllocator, NoSharing)
{
    VectorAllocator va;
    std::set<Vector> seen;
    for (int i = 0; i < 50; ++i) {
        auto v = va.allocate();
        ASSERT_TRUE(v.has_value());
        EXPECT_TRUE(seen.insert(*v).second) << "vector reused";
    }
}

TEST(VectorAllocator, ExhaustionReturnsNullopt)
{
    VectorAllocator va;
    unsigned n = va.freeCount();
    for (unsigned i = 0; i < n; ++i)
        ASSERT_TRUE(va.allocate().has_value());
    EXPECT_FALSE(va.allocate().has_value());
}

TEST(VectorAllocator, ReleaseRecycles)
{
    VectorAllocator va;
    Vector v = *va.allocate();
    va.release(v);
    EXPECT_FALSE(va.inUse(v));
    EXPECT_EQ(*va.allocate(), v);
}

TEST(VectorAllocatorDeathTest, DoubleReleasePanics)
{
    VectorAllocator va;
    Vector v = *va.allocate();
    va.release(v);
    EXPECT_DEATH(va.release(v), "double release");
}

TEST(Lapic, DeliversOnAccept)
{
    Lapic lapic;
    std::vector<Vector> got;
    lapic.setDeliver([&](Vector v) { got.push_back(v); });
    lapic.accept(0x41);
    EXPECT_EQ(got, (std::vector<Vector>{0x41}));
    EXPECT_TRUE(lapic.inService(0x41));
}

TEST(Lapic, SamePriorityClassWaitsForEoi)
{
    Lapic lapic;
    std::vector<Vector> got;
    lapic.setDeliver([&](Vector v) { got.push_back(v); });
    lapic.accept(0x41);
    lapic.accept(0x42);    // same class 0x4x: stays in IRR
    EXPECT_EQ(got.size(), 1u);
    EXPECT_TRUE(lapic.pending(0x42));
    lapic.eoi();
    EXPECT_EQ(got, (std::vector<Vector>{0x41, 0x42}));
}

TEST(Lapic, HigherPriorityClassPreempts)
{
    Lapic lapic;
    std::vector<Vector> got;
    lapic.setDeliver([&](Vector v) { got.push_back(v); });
    lapic.accept(0x41);
    lapic.accept(0x91);    // higher class: nested delivery
    EXPECT_EQ(got, (std::vector<Vector>{0x41, 0x91}));
    EXPECT_EQ(*lapic.highestInService(), 0x91);
    lapic.eoi();    // clears 0x91
    EXPECT_EQ(*lapic.highestInService(), 0x41);
    lapic.eoi();
    EXPECT_FALSE(lapic.highestInService().has_value());
    EXPECT_EQ(lapic.eois().value(), 2u);
}

TEST(Lapic, EoiDispatchesHighestPending)
{
    Lapic lapic;
    std::vector<Vector> got;
    lapic.setDeliver([&](Vector v) { got.push_back(v); });
    lapic.accept(0x41);
    lapic.accept(0x45);
    lapic.accept(0x43);
    lapic.eoi();
    // Highest pending in the class first.
    EXPECT_EQ(got[1], 0x45);
    lapic.eoi();
    EXPECT_EQ(got[2], 0x43);
}

TEST(VirtualLapic, CountsEoiWritesAndExits)
{
    VirtualLapic vl;
    int hook_calls = 0;
    std::uint16_t last_off = 0;
    vl.setExitHook([&](const VirtualLapic::ApicAccessExit &e) {
        ++hook_calls;
        last_off = e.offset;
    });
    vl.inject(0x41);
    vl.guestEoiWrite();
    EXPECT_EQ(vl.eoiWrites(), 1u);
    EXPECT_EQ(vl.apicAccessExits(), 1u);
    EXPECT_EQ(last_off, Lapic::kRegEoi);
    vl.guestApicAccess(Lapic::kRegTpr, true);
    EXPECT_EQ(vl.apicAccessExits(), 2u);
    EXPECT_EQ(hook_calls, 2);
    EXPECT_EQ(last_off, Lapic::kRegTpr);
}

TEST(VirtualLapic, EoiIgnoresValueAndClearsIsr)
{
    VirtualLapic vl;
    vl.inject(0x41);
    EXPECT_TRUE(vl.chip().inService(0x41));
    vl.guestEoiWrite();
    EXPECT_FALSE(vl.chip().inService(0x41));
}

TEST(EventChannel, SendDeliversWhenUnmasked)
{
    EventChannelBank bank;
    int upcalls = 0;
    auto p = bank.bind([&](EventChannelBank::Port) { ++upcalls; });
    bank.send(p);
    EXPECT_EQ(upcalls, 1);
    EXPECT_FALSE(bank.pending(p));
}

TEST(EventChannel, MaskHoldsPendingUntilUnmask)
{
    EventChannelBank bank;
    int upcalls = 0;
    auto p = bank.bind([&](EventChannelBank::Port) { ++upcalls; });
    bank.mask(p);
    bank.send(p);
    bank.send(p);    // coalesces into one pending bit
    EXPECT_EQ(upcalls, 0);
    EXPECT_TRUE(bank.pending(p));
    bank.unmask(p);
    EXPECT_EQ(upcalls, 1);
    EXPECT_EQ(bank.sends().value(), 2u);
    EXPECT_EQ(bank.upcalls().value(), 1u);
}

TEST(EventChannel, PortsAreIndependent)
{
    EventChannelBank bank;
    int a = 0, b = 0;
    auto pa = bank.bind([&](EventChannelBank::Port) { ++a; });
    auto pb = bank.bind([&](EventChannelBank::Port) { ++b; });
    bank.mask(pa);
    bank.send(pa);
    bank.send(pb);
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
}

TEST(EventChannel, UnbindFreesPort)
{
    EventChannelBank bank;
    auto p = bank.bind([](EventChannelBank::Port) {});
    bank.unbind(p);
    auto p2 = bank.bind([](EventChannelBank::Port) {});
    EXPECT_EQ(p, p2);    // recycled
}

TEST(EventChannelDeathTest, SendOnUnboundPanics)
{
    EventChannelBank bank;
    auto p = bank.bind([](EventChannelBank::Port) {});
    bank.unbind(p);
    EXPECT_DEATH(bank.send(p), "unbound");
}

TEST(InterruptRouter, RoutesMsiByVector)
{
    InterruptRouter router;
    std::vector<std::pair<Vector, sriov::pci::Rid>> got;
    Vector v = router.allocateAndBind(
        [&](Vector vec, sriov::pci::Rid rid) { got.push_back({vec, rid}); });

    router.deliverMsi(0x123, MsiMessage::forVector(0, v));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].first, v);
    EXPECT_EQ(got[0].second, 0x123);
    EXPECT_EQ(router.delivered(), 1u);
}

TEST(InterruptRouter, SpuriousVectorCounted)
{
    InterruptRouter router;
    router.deliverMsi(0x1, MsiMessage::forVector(0, 0x99));
    EXPECT_EQ(router.spurious(), 1u);
}

TEST(InterruptRouter, AttachedFunctionSignalsThroughRouter)
{
    InterruptRouter router;
    sriov::pci::PciFunction fn(sriov::pci::Bdf{1, 0, 0}, 0x8086, 0x10ca,
                               0x020000,
                               sriov::pci::PciFunction::Kind::Virtual);
    fn.addMsix(1, 0);
    router.attachFunction(fn);
    int hits = 0;
    Vector v = router.allocateAndBind(
        [&](Vector, sriov::pci::Rid) { ++hits; });
    fn.msix()->programEntry(0, MsiMessage::forVector(0, v));
    fn.msix()->maskEntry(0, false);
    fn.msix()->setEnable(true);
    fn.signalMsix(0);
    EXPECT_EQ(hits, 1);
}

TEST(InterruptRouter, UnbindStopsDelivery)
{
    InterruptRouter router;
    int hits = 0;
    Vector v = router.allocateAndBind(
        [&](Vector, sriov::pci::Rid) { ++hits; });
    router.unbindVector(v);
    router.deliverMsi(0, MsiMessage::forVector(0, v));
    EXPECT_EQ(hits, 0);
    EXPECT_EQ(router.spurious(), 1u);
}
