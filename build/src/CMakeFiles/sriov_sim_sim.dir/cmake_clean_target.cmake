file(REMOVE_RECURSE
  "libsriov_sim_sim.a"
)
