file(REMOVE_RECURSE
  "CMakeFiles/sriov_sim_sim.dir/sim/cpu_server.cpp.o"
  "CMakeFiles/sriov_sim_sim.dir/sim/cpu_server.cpp.o.d"
  "CMakeFiles/sriov_sim_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/sriov_sim_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/sriov_sim_sim.dir/sim/log.cpp.o"
  "CMakeFiles/sriov_sim_sim.dir/sim/log.cpp.o.d"
  "CMakeFiles/sriov_sim_sim.dir/sim/random.cpp.o"
  "CMakeFiles/sriov_sim_sim.dir/sim/random.cpp.o.d"
  "CMakeFiles/sriov_sim_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/sriov_sim_sim.dir/sim/stats.cpp.o.d"
  "CMakeFiles/sriov_sim_sim.dir/sim/time.cpp.o"
  "CMakeFiles/sriov_sim_sim.dir/sim/time.cpp.o.d"
  "CMakeFiles/sriov_sim_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/sriov_sim_sim.dir/sim/trace.cpp.o.d"
  "libsriov_sim_sim.a"
  "libsriov_sim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sriov_sim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
