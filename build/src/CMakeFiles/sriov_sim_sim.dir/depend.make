# Empty dependencies file for sriov_sim_sim.
# This may be replaced when dependencies are built.
