# Empty compiler generated dependencies file for sriov_sim_sim.
# This may be replaced when dependencies are built.
