file(REMOVE_RECURSE
  "libsriov_sim_pci.a"
)
