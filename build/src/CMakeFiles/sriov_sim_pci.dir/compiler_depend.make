# Empty compiler generated dependencies file for sriov_sim_pci.
# This may be replaced when dependencies are built.
