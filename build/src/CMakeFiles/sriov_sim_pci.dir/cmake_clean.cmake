file(REMOVE_RECURSE
  "CMakeFiles/sriov_sim_pci.dir/pci/acs_cap.cpp.o"
  "CMakeFiles/sriov_sim_pci.dir/pci/acs_cap.cpp.o.d"
  "CMakeFiles/sriov_sim_pci.dir/pci/bus.cpp.o"
  "CMakeFiles/sriov_sim_pci.dir/pci/bus.cpp.o.d"
  "CMakeFiles/sriov_sim_pci.dir/pci/capability.cpp.o"
  "CMakeFiles/sriov_sim_pci.dir/pci/capability.cpp.o.d"
  "CMakeFiles/sriov_sim_pci.dir/pci/config_space.cpp.o"
  "CMakeFiles/sriov_sim_pci.dir/pci/config_space.cpp.o.d"
  "CMakeFiles/sriov_sim_pci.dir/pci/device.cpp.o"
  "CMakeFiles/sriov_sim_pci.dir/pci/device.cpp.o.d"
  "CMakeFiles/sriov_sim_pci.dir/pci/function.cpp.o"
  "CMakeFiles/sriov_sim_pci.dir/pci/function.cpp.o.d"
  "CMakeFiles/sriov_sim_pci.dir/pci/hotplug_slot.cpp.o"
  "CMakeFiles/sriov_sim_pci.dir/pci/hotplug_slot.cpp.o.d"
  "CMakeFiles/sriov_sim_pci.dir/pci/msi_cap.cpp.o"
  "CMakeFiles/sriov_sim_pci.dir/pci/msi_cap.cpp.o.d"
  "CMakeFiles/sriov_sim_pci.dir/pci/pci_switch.cpp.o"
  "CMakeFiles/sriov_sim_pci.dir/pci/pci_switch.cpp.o.d"
  "CMakeFiles/sriov_sim_pci.dir/pci/root_complex.cpp.o"
  "CMakeFiles/sriov_sim_pci.dir/pci/root_complex.cpp.o.d"
  "CMakeFiles/sriov_sim_pci.dir/pci/sriov_cap.cpp.o"
  "CMakeFiles/sriov_sim_pci.dir/pci/sriov_cap.cpp.o.d"
  "libsriov_sim_pci.a"
  "libsriov_sim_pci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sriov_sim_pci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
