
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pci/acs_cap.cpp" "src/CMakeFiles/sriov_sim_pci.dir/pci/acs_cap.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_pci.dir/pci/acs_cap.cpp.o.d"
  "/root/repo/src/pci/bus.cpp" "src/CMakeFiles/sriov_sim_pci.dir/pci/bus.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_pci.dir/pci/bus.cpp.o.d"
  "/root/repo/src/pci/capability.cpp" "src/CMakeFiles/sriov_sim_pci.dir/pci/capability.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_pci.dir/pci/capability.cpp.o.d"
  "/root/repo/src/pci/config_space.cpp" "src/CMakeFiles/sriov_sim_pci.dir/pci/config_space.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_pci.dir/pci/config_space.cpp.o.d"
  "/root/repo/src/pci/device.cpp" "src/CMakeFiles/sriov_sim_pci.dir/pci/device.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_pci.dir/pci/device.cpp.o.d"
  "/root/repo/src/pci/function.cpp" "src/CMakeFiles/sriov_sim_pci.dir/pci/function.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_pci.dir/pci/function.cpp.o.d"
  "/root/repo/src/pci/hotplug_slot.cpp" "src/CMakeFiles/sriov_sim_pci.dir/pci/hotplug_slot.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_pci.dir/pci/hotplug_slot.cpp.o.d"
  "/root/repo/src/pci/msi_cap.cpp" "src/CMakeFiles/sriov_sim_pci.dir/pci/msi_cap.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_pci.dir/pci/msi_cap.cpp.o.d"
  "/root/repo/src/pci/pci_switch.cpp" "src/CMakeFiles/sriov_sim_pci.dir/pci/pci_switch.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_pci.dir/pci/pci_switch.cpp.o.d"
  "/root/repo/src/pci/root_complex.cpp" "src/CMakeFiles/sriov_sim_pci.dir/pci/root_complex.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_pci.dir/pci/root_complex.cpp.o.d"
  "/root/repo/src/pci/sriov_cap.cpp" "src/CMakeFiles/sriov_sim_pci.dir/pci/sriov_cap.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_pci.dir/pci/sriov_cap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sriov_sim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
