
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/dma_engine.cpp" "src/CMakeFiles/sriov_sim_mem.dir/mem/dma_engine.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_mem.dir/mem/dma_engine.cpp.o.d"
  "/root/repo/src/mem/guest_phys_map.cpp" "src/CMakeFiles/sriov_sim_mem.dir/mem/guest_phys_map.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_mem.dir/mem/guest_phys_map.cpp.o.d"
  "/root/repo/src/mem/iommu.cpp" "src/CMakeFiles/sriov_sim_mem.dir/mem/iommu.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_mem.dir/mem/iommu.cpp.o.d"
  "/root/repo/src/mem/machine_memory.cpp" "src/CMakeFiles/sriov_sim_mem.dir/mem/machine_memory.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_mem.dir/mem/machine_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sriov_sim_pci.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
