file(REMOVE_RECURSE
  "libsriov_sim_mem.a"
)
