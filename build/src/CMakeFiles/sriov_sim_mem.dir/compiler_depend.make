# Empty compiler generated dependencies file for sriov_sim_mem.
# This may be replaced when dependencies are built.
