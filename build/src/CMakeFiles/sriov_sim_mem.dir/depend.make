# Empty dependencies file for sriov_sim_mem.
# This may be replaced when dependencies are built.
