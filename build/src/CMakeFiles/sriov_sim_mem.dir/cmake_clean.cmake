file(REMOVE_RECURSE
  "CMakeFiles/sriov_sim_mem.dir/mem/dma_engine.cpp.o"
  "CMakeFiles/sriov_sim_mem.dir/mem/dma_engine.cpp.o.d"
  "CMakeFiles/sriov_sim_mem.dir/mem/guest_phys_map.cpp.o"
  "CMakeFiles/sriov_sim_mem.dir/mem/guest_phys_map.cpp.o.d"
  "CMakeFiles/sriov_sim_mem.dir/mem/iommu.cpp.o"
  "CMakeFiles/sriov_sim_mem.dir/mem/iommu.cpp.o.d"
  "CMakeFiles/sriov_sim_mem.dir/mem/machine_memory.cpp.o"
  "CMakeFiles/sriov_sim_mem.dir/mem/machine_memory.cpp.o.d"
  "libsriov_sim_mem.a"
  "libsriov_sim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sriov_sim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
