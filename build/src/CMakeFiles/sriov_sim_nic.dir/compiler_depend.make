# Empty compiler generated dependencies file for sriov_sim_nic.
# This may be replaced when dependencies are built.
