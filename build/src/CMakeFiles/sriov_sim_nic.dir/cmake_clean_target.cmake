file(REMOVE_RECURSE
  "libsriov_sim_nic.a"
)
