file(REMOVE_RECURSE
  "CMakeFiles/sriov_sim_nic.dir/nic/desc_ring.cpp.o"
  "CMakeFiles/sriov_sim_nic.dir/nic/desc_ring.cpp.o.d"
  "CMakeFiles/sriov_sim_nic.dir/nic/l2_switch.cpp.o"
  "CMakeFiles/sriov_sim_nic.dir/nic/l2_switch.cpp.o.d"
  "CMakeFiles/sriov_sim_nic.dir/nic/mailbox.cpp.o"
  "CMakeFiles/sriov_sim_nic.dir/nic/mailbox.cpp.o.d"
  "CMakeFiles/sriov_sim_nic.dir/nic/packet.cpp.o"
  "CMakeFiles/sriov_sim_nic.dir/nic/packet.cpp.o.d"
  "CMakeFiles/sriov_sim_nic.dir/nic/plain_nic.cpp.o"
  "CMakeFiles/sriov_sim_nic.dir/nic/plain_nic.cpp.o.d"
  "CMakeFiles/sriov_sim_nic.dir/nic/sriov_nic.cpp.o"
  "CMakeFiles/sriov_sim_nic.dir/nic/sriov_nic.cpp.o.d"
  "CMakeFiles/sriov_sim_nic.dir/nic/vmdq_nic.cpp.o"
  "CMakeFiles/sriov_sim_nic.dir/nic/vmdq_nic.cpp.o.d"
  "CMakeFiles/sriov_sim_nic.dir/nic/wire.cpp.o"
  "CMakeFiles/sriov_sim_nic.dir/nic/wire.cpp.o.d"
  "libsriov_sim_nic.a"
  "libsriov_sim_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sriov_sim_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
