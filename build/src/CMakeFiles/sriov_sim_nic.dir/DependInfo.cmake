
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nic/desc_ring.cpp" "src/CMakeFiles/sriov_sim_nic.dir/nic/desc_ring.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_nic.dir/nic/desc_ring.cpp.o.d"
  "/root/repo/src/nic/l2_switch.cpp" "src/CMakeFiles/sriov_sim_nic.dir/nic/l2_switch.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_nic.dir/nic/l2_switch.cpp.o.d"
  "/root/repo/src/nic/mailbox.cpp" "src/CMakeFiles/sriov_sim_nic.dir/nic/mailbox.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_nic.dir/nic/mailbox.cpp.o.d"
  "/root/repo/src/nic/packet.cpp" "src/CMakeFiles/sriov_sim_nic.dir/nic/packet.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_nic.dir/nic/packet.cpp.o.d"
  "/root/repo/src/nic/plain_nic.cpp" "src/CMakeFiles/sriov_sim_nic.dir/nic/plain_nic.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_nic.dir/nic/plain_nic.cpp.o.d"
  "/root/repo/src/nic/sriov_nic.cpp" "src/CMakeFiles/sriov_sim_nic.dir/nic/sriov_nic.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_nic.dir/nic/sriov_nic.cpp.o.d"
  "/root/repo/src/nic/vmdq_nic.cpp" "src/CMakeFiles/sriov_sim_nic.dir/nic/vmdq_nic.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_nic.dir/nic/vmdq_nic.cpp.o.d"
  "/root/repo/src/nic/wire.cpp" "src/CMakeFiles/sriov_sim_nic.dir/nic/wire.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_nic.dir/nic/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sriov_sim_intr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_pci.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
