# Empty compiler generated dependencies file for sriov_sim_intr.
# This may be replaced when dependencies are built.
