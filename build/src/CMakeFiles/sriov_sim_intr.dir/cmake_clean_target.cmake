file(REMOVE_RECURSE
  "libsriov_sim_intr.a"
)
