file(REMOVE_RECURSE
  "CMakeFiles/sriov_sim_intr.dir/intr/event_channel.cpp.o"
  "CMakeFiles/sriov_sim_intr.dir/intr/event_channel.cpp.o.d"
  "CMakeFiles/sriov_sim_intr.dir/intr/interrupt_router.cpp.o"
  "CMakeFiles/sriov_sim_intr.dir/intr/interrupt_router.cpp.o.d"
  "CMakeFiles/sriov_sim_intr.dir/intr/lapic.cpp.o"
  "CMakeFiles/sriov_sim_intr.dir/intr/lapic.cpp.o.d"
  "CMakeFiles/sriov_sim_intr.dir/intr/vector_allocator.cpp.o"
  "CMakeFiles/sriov_sim_intr.dir/intr/vector_allocator.cpp.o.d"
  "CMakeFiles/sriov_sim_intr.dir/intr/virtual_lapic.cpp.o"
  "CMakeFiles/sriov_sim_intr.dir/intr/virtual_lapic.cpp.o.d"
  "libsriov_sim_intr.a"
  "libsriov_sim_intr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sriov_sim_intr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
