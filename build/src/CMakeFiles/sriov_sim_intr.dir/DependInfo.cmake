
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/intr/event_channel.cpp" "src/CMakeFiles/sriov_sim_intr.dir/intr/event_channel.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_intr.dir/intr/event_channel.cpp.o.d"
  "/root/repo/src/intr/interrupt_router.cpp" "src/CMakeFiles/sriov_sim_intr.dir/intr/interrupt_router.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_intr.dir/intr/interrupt_router.cpp.o.d"
  "/root/repo/src/intr/lapic.cpp" "src/CMakeFiles/sriov_sim_intr.dir/intr/lapic.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_intr.dir/intr/lapic.cpp.o.d"
  "/root/repo/src/intr/vector_allocator.cpp" "src/CMakeFiles/sriov_sim_intr.dir/intr/vector_allocator.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_intr.dir/intr/vector_allocator.cpp.o.d"
  "/root/repo/src/intr/virtual_lapic.cpp" "src/CMakeFiles/sriov_sim_intr.dir/intr/virtual_lapic.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_intr.dir/intr/virtual_lapic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sriov_sim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_pci.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
