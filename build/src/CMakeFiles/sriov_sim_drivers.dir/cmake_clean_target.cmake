file(REMOVE_RECURSE
  "libsriov_sim_drivers.a"
)
