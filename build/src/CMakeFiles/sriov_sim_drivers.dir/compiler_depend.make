# Empty compiler generated dependencies file for sriov_sim_drivers.
# This may be replaced when dependencies are built.
