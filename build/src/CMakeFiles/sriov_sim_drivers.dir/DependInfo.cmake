
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drivers/itr_policy.cpp" "src/CMakeFiles/sriov_sim_drivers.dir/drivers/itr_policy.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_drivers.dir/drivers/itr_policy.cpp.o.d"
  "/root/repo/src/drivers/native_driver.cpp" "src/CMakeFiles/sriov_sim_drivers.dir/drivers/native_driver.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_drivers.dir/drivers/native_driver.cpp.o.d"
  "/root/repo/src/drivers/netback.cpp" "src/CMakeFiles/sriov_sim_drivers.dir/drivers/netback.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_drivers.dir/drivers/netback.cpp.o.d"
  "/root/repo/src/drivers/netfront.cpp" "src/CMakeFiles/sriov_sim_drivers.dir/drivers/netfront.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_drivers.dir/drivers/netfront.cpp.o.d"
  "/root/repo/src/drivers/pf_driver.cpp" "src/CMakeFiles/sriov_sim_drivers.dir/drivers/pf_driver.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_drivers.dir/drivers/pf_driver.cpp.o.d"
  "/root/repo/src/drivers/vf_driver.cpp" "src/CMakeFiles/sriov_sim_drivers.dir/drivers/vf_driver.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_drivers.dir/drivers/vf_driver.cpp.o.d"
  "/root/repo/src/drivers/vmdq_driver.cpp" "src/CMakeFiles/sriov_sim_drivers.dir/drivers/vmdq_driver.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_drivers.dir/drivers/vmdq_driver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sriov_sim_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_intr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_pci.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
