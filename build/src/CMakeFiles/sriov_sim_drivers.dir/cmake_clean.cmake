file(REMOVE_RECURSE
  "CMakeFiles/sriov_sim_drivers.dir/drivers/itr_policy.cpp.o"
  "CMakeFiles/sriov_sim_drivers.dir/drivers/itr_policy.cpp.o.d"
  "CMakeFiles/sriov_sim_drivers.dir/drivers/native_driver.cpp.o"
  "CMakeFiles/sriov_sim_drivers.dir/drivers/native_driver.cpp.o.d"
  "CMakeFiles/sriov_sim_drivers.dir/drivers/netback.cpp.o"
  "CMakeFiles/sriov_sim_drivers.dir/drivers/netback.cpp.o.d"
  "CMakeFiles/sriov_sim_drivers.dir/drivers/netfront.cpp.o"
  "CMakeFiles/sriov_sim_drivers.dir/drivers/netfront.cpp.o.d"
  "CMakeFiles/sriov_sim_drivers.dir/drivers/pf_driver.cpp.o"
  "CMakeFiles/sriov_sim_drivers.dir/drivers/pf_driver.cpp.o.d"
  "CMakeFiles/sriov_sim_drivers.dir/drivers/vf_driver.cpp.o"
  "CMakeFiles/sriov_sim_drivers.dir/drivers/vf_driver.cpp.o.d"
  "CMakeFiles/sriov_sim_drivers.dir/drivers/vmdq_driver.cpp.o"
  "CMakeFiles/sriov_sim_drivers.dir/drivers/vmdq_driver.cpp.o.d"
  "libsriov_sim_drivers.a"
  "libsriov_sim_drivers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sriov_sim_drivers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
