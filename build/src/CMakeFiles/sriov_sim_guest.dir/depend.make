# Empty dependencies file for sriov_sim_guest.
# This may be replaced when dependencies are built.
