file(REMOVE_RECURSE
  "libsriov_sim_guest.a"
)
