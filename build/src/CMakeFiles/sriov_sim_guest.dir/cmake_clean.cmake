file(REMOVE_RECURSE
  "CMakeFiles/sriov_sim_guest.dir/guest/bonding.cpp.o"
  "CMakeFiles/sriov_sim_guest.dir/guest/bonding.cpp.o.d"
  "CMakeFiles/sriov_sim_guest.dir/guest/kernel.cpp.o"
  "CMakeFiles/sriov_sim_guest.dir/guest/kernel.cpp.o.d"
  "CMakeFiles/sriov_sim_guest.dir/guest/net_stack.cpp.o"
  "CMakeFiles/sriov_sim_guest.dir/guest/net_stack.cpp.o.d"
  "CMakeFiles/sriov_sim_guest.dir/guest/netperf.cpp.o"
  "CMakeFiles/sriov_sim_guest.dir/guest/netperf.cpp.o.d"
  "CMakeFiles/sriov_sim_guest.dir/guest/socket_buffer.cpp.o"
  "CMakeFiles/sriov_sim_guest.dir/guest/socket_buffer.cpp.o.d"
  "libsriov_sim_guest.a"
  "libsriov_sim_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sriov_sim_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
