file(REMOVE_RECURSE
  "CMakeFiles/sriov_sim_core.dir/core/aic.cpp.o"
  "CMakeFiles/sriov_sim_core.dir/core/aic.cpp.o.d"
  "CMakeFiles/sriov_sim_core.dir/core/dnis.cpp.o"
  "CMakeFiles/sriov_sim_core.dir/core/dnis.cpp.o.d"
  "CMakeFiles/sriov_sim_core.dir/core/experiment.cpp.o"
  "CMakeFiles/sriov_sim_core.dir/core/experiment.cpp.o.d"
  "CMakeFiles/sriov_sim_core.dir/core/iov_manager.cpp.o"
  "CMakeFiles/sriov_sim_core.dir/core/iov_manager.cpp.o.d"
  "CMakeFiles/sriov_sim_core.dir/core/optimizations.cpp.o"
  "CMakeFiles/sriov_sim_core.dir/core/optimizations.cpp.o.d"
  "CMakeFiles/sriov_sim_core.dir/core/testbed.cpp.o"
  "CMakeFiles/sriov_sim_core.dir/core/testbed.cpp.o.d"
  "libsriov_sim_core.a"
  "libsriov_sim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sriov_sim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
