# Empty dependencies file for sriov_sim_core.
# This may be replaced when dependencies are built.
