file(REMOVE_RECURSE
  "libsriov_sim_core.a"
)
