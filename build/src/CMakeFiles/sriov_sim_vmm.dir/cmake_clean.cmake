file(REMOVE_RECURSE
  "CMakeFiles/sriov_sim_vmm.dir/vmm/cost_model.cpp.o"
  "CMakeFiles/sriov_sim_vmm.dir/vmm/cost_model.cpp.o.d"
  "CMakeFiles/sriov_sim_vmm.dir/vmm/device_model.cpp.o"
  "CMakeFiles/sriov_sim_vmm.dir/vmm/device_model.cpp.o.d"
  "CMakeFiles/sriov_sim_vmm.dir/vmm/domain.cpp.o"
  "CMakeFiles/sriov_sim_vmm.dir/vmm/domain.cpp.o.d"
  "CMakeFiles/sriov_sim_vmm.dir/vmm/grant_table.cpp.o"
  "CMakeFiles/sriov_sim_vmm.dir/vmm/grant_table.cpp.o.d"
  "CMakeFiles/sriov_sim_vmm.dir/vmm/hotplug_controller.cpp.o"
  "CMakeFiles/sriov_sim_vmm.dir/vmm/hotplug_controller.cpp.o.d"
  "CMakeFiles/sriov_sim_vmm.dir/vmm/hypervisor.cpp.o"
  "CMakeFiles/sriov_sim_vmm.dir/vmm/hypervisor.cpp.o.d"
  "CMakeFiles/sriov_sim_vmm.dir/vmm/migration.cpp.o"
  "CMakeFiles/sriov_sim_vmm.dir/vmm/migration.cpp.o.d"
  "CMakeFiles/sriov_sim_vmm.dir/vmm/pciback.cpp.o"
  "CMakeFiles/sriov_sim_vmm.dir/vmm/pciback.cpp.o.d"
  "CMakeFiles/sriov_sim_vmm.dir/vmm/vcpu.cpp.o"
  "CMakeFiles/sriov_sim_vmm.dir/vmm/vcpu.cpp.o.d"
  "CMakeFiles/sriov_sim_vmm.dir/vmm/vm_exit.cpp.o"
  "CMakeFiles/sriov_sim_vmm.dir/vmm/vm_exit.cpp.o.d"
  "libsriov_sim_vmm.a"
  "libsriov_sim_vmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sriov_sim_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
