file(REMOVE_RECURSE
  "libsriov_sim_vmm.a"
)
