# Empty dependencies file for sriov_sim_vmm.
# This may be replaced when dependencies are built.
