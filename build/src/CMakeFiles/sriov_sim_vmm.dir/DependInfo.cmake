
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vmm/cost_model.cpp" "src/CMakeFiles/sriov_sim_vmm.dir/vmm/cost_model.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_vmm.dir/vmm/cost_model.cpp.o.d"
  "/root/repo/src/vmm/device_model.cpp" "src/CMakeFiles/sriov_sim_vmm.dir/vmm/device_model.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_vmm.dir/vmm/device_model.cpp.o.d"
  "/root/repo/src/vmm/domain.cpp" "src/CMakeFiles/sriov_sim_vmm.dir/vmm/domain.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_vmm.dir/vmm/domain.cpp.o.d"
  "/root/repo/src/vmm/grant_table.cpp" "src/CMakeFiles/sriov_sim_vmm.dir/vmm/grant_table.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_vmm.dir/vmm/grant_table.cpp.o.d"
  "/root/repo/src/vmm/hotplug_controller.cpp" "src/CMakeFiles/sriov_sim_vmm.dir/vmm/hotplug_controller.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_vmm.dir/vmm/hotplug_controller.cpp.o.d"
  "/root/repo/src/vmm/hypervisor.cpp" "src/CMakeFiles/sriov_sim_vmm.dir/vmm/hypervisor.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_vmm.dir/vmm/hypervisor.cpp.o.d"
  "/root/repo/src/vmm/migration.cpp" "src/CMakeFiles/sriov_sim_vmm.dir/vmm/migration.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_vmm.dir/vmm/migration.cpp.o.d"
  "/root/repo/src/vmm/pciback.cpp" "src/CMakeFiles/sriov_sim_vmm.dir/vmm/pciback.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_vmm.dir/vmm/pciback.cpp.o.d"
  "/root/repo/src/vmm/vcpu.cpp" "src/CMakeFiles/sriov_sim_vmm.dir/vmm/vcpu.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_vmm.dir/vmm/vcpu.cpp.o.d"
  "/root/repo/src/vmm/vm_exit.cpp" "src/CMakeFiles/sriov_sim_vmm.dir/vmm/vm_exit.cpp.o" "gcc" "src/CMakeFiles/sriov_sim_vmm.dir/vmm/vm_exit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sriov_sim_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_intr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_pci.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
