file(REMOVE_RECURSE
  "CMakeFiles/vmm_test.dir/vmm_test.cpp.o"
  "CMakeFiles/vmm_test.dir/vmm_test.cpp.o.d"
  "vmm_test"
  "vmm_test.pdb"
  "vmm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
