# Empty compiler generated dependencies file for intr_test.
# This may be replaced when dependencies are built.
