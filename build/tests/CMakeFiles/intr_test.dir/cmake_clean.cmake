file(REMOVE_RECURSE
  "CMakeFiles/intr_test.dir/intr_test.cpp.o"
  "CMakeFiles/intr_test.dir/intr_test.cpp.o.d"
  "intr_test"
  "intr_test.pdb"
  "intr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
