# Empty dependencies file for pci_test.
# This may be replaced when dependencies are built.
