file(REMOVE_RECURSE
  "CMakeFiles/pci_test.dir/pci_test.cpp.o"
  "CMakeFiles/pci_test.dir/pci_test.cpp.o.d"
  "pci_test"
  "pci_test.pdb"
  "pci_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pci_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
