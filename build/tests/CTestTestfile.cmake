# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/pci_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/intr_test[1]_include.cmake")
include("/root/repo/build/tests/nic_test[1]_include.cmake")
include("/root/repo/build/tests/vmm_test[1]_include.cmake")
include("/root/repo/build/tests/guest_test[1]_include.cmake")
include("/root/repo/build/tests/drivers_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/testbed_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
