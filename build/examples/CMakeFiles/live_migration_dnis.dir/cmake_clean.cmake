file(REMOVE_RECURSE
  "CMakeFiles/live_migration_dnis.dir/live_migration_dnis.cpp.o"
  "CMakeFiles/live_migration_dnis.dir/live_migration_dnis.cpp.o.d"
  "live_migration_dnis"
  "live_migration_dnis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_migration_dnis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
