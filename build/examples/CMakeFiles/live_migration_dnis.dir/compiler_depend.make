# Empty compiler generated dependencies file for live_migration_dnis.
# This may be replaced when dependencies are built.
