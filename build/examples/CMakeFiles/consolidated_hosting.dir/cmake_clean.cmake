file(REMOVE_RECURSE
  "CMakeFiles/consolidated_hosting.dir/consolidated_hosting.cpp.o"
  "CMakeFiles/consolidated_hosting.dir/consolidated_hosting.cpp.o.d"
  "consolidated_hosting"
  "consolidated_hosting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consolidated_hosting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
