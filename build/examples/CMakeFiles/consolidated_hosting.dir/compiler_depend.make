# Empty compiler generated dependencies file for consolidated_hosting.
# This may be replaced when dependencies are built.
