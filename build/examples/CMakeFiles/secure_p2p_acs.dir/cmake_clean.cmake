file(REMOVE_RECURSE
  "CMakeFiles/secure_p2p_acs.dir/secure_p2p_acs.cpp.o"
  "CMakeFiles/secure_p2p_acs.dir/secure_p2p_acs.cpp.o.d"
  "secure_p2p_acs"
  "secure_p2p_acs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_p2p_acs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
