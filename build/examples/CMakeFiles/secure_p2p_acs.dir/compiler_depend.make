# Empty compiler generated dependencies file for secure_p2p_acs.
# This may be replaced when dependencies are built.
