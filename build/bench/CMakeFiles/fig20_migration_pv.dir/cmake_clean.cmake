file(REMOVE_RECURSE
  "CMakeFiles/fig20_migration_pv.dir/fig20_migration_pv.cpp.o"
  "CMakeFiles/fig20_migration_pv.dir/fig20_migration_pv.cpp.o.d"
  "fig20_migration_pv"
  "fig20_migration_pv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_migration_pv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
