# Empty compiler generated dependencies file for fig20_migration_pv.
# This may be replaced when dependencies are built.
