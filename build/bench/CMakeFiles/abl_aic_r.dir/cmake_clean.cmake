file(REMOVE_RECURSE
  "CMakeFiles/abl_aic_r.dir/abl_aic_r.cpp.o"
  "CMakeFiles/abl_aic_r.dir/abl_aic_r.cpp.o.d"
  "abl_aic_r"
  "abl_aic_r.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_aic_r.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
