# Empty dependencies file for abl_aic_r.
# This may be replaced when dependencies are built.
