# Empty compiler generated dependencies file for fig13_intervm_sriov.
# This may be replaced when dependencies are built.
