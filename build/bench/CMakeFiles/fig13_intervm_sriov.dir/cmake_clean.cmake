file(REMOVE_RECURSE
  "CMakeFiles/fig13_intervm_sriov.dir/fig13_intervm_sriov.cpp.o"
  "CMakeFiles/fig13_intervm_sriov.dir/fig13_intervm_sriov.cpp.o.d"
  "fig13_intervm_sriov"
  "fig13_intervm_sriov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_intervm_sriov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
