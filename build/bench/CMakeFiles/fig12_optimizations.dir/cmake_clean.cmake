file(REMOVE_RECURSE
  "CMakeFiles/fig12_optimizations.dir/fig12_optimizations.cpp.o"
  "CMakeFiles/fig12_optimizations.dir/fig12_optimizations.cpp.o.d"
  "fig12_optimizations"
  "fig12_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
