# Empty compiler generated dependencies file for fig12_optimizations.
# This may be replaced when dependencies are built.
