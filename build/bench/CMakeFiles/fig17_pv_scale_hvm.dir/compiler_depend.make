# Empty compiler generated dependencies file for fig17_pv_scale_hvm.
# This may be replaced when dependencies are built.
