file(REMOVE_RECURSE
  "CMakeFiles/fig17_pv_scale_hvm.dir/fig17_pv_scale_hvm.cpp.o"
  "CMakeFiles/fig17_pv_scale_hvm.dir/fig17_pv_scale_hvm.cpp.o.d"
  "fig17_pv_scale_hvm"
  "fig17_pv_scale_hvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_pv_scale_hvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
