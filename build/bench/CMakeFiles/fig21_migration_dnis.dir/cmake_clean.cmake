file(REMOVE_RECURSE
  "CMakeFiles/fig21_migration_dnis.dir/fig21_migration_dnis.cpp.o"
  "CMakeFiles/fig21_migration_dnis.dir/fig21_migration_dnis.cpp.o.d"
  "fig21_migration_dnis"
  "fig21_migration_dnis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_migration_dnis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
