# Empty dependencies file for fig21_migration_dnis.
# This may be replaced when dependencies are built.
