file(REMOVE_RECURSE
  "CMakeFiles/fig16_scale_pvm.dir/fig16_scale_pvm.cpp.o"
  "CMakeFiles/fig16_scale_pvm.dir/fig16_scale_pvm.cpp.o.d"
  "fig16_scale_pvm"
  "fig16_scale_pvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_scale_pvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
