# Empty compiler generated dependencies file for fig16_scale_pvm.
# This may be replaced when dependencies are built.
