# Empty dependencies file for fig15_scale_hvm.
# This may be replaced when dependencies are built.
