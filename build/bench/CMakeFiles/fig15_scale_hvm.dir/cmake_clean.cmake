file(REMOVE_RECURSE
  "CMakeFiles/fig15_scale_hvm.dir/fig15_scale_hvm.cpp.o"
  "CMakeFiles/fig15_scale_hvm.dir/fig15_scale_hvm.cpp.o.d"
  "fig15_scale_hvm"
  "fig15_scale_hvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_scale_hvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
