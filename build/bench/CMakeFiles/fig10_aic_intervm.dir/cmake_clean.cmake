file(REMOVE_RECURSE
  "CMakeFiles/fig10_aic_intervm.dir/fig10_aic_intervm.cpp.o"
  "CMakeFiles/fig10_aic_intervm.dir/fig10_aic_intervm.cpp.o.d"
  "fig10_aic_intervm"
  "fig10_aic_intervm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_aic_intervm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
