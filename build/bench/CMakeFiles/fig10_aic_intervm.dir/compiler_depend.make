# Empty compiler generated dependencies file for fig10_aic_intervm.
# This may be replaced when dependencies are built.
