file(REMOVE_RECURSE
  "CMakeFiles/fig07_exit_breakdown.dir/fig07_exit_breakdown.cpp.o"
  "CMakeFiles/fig07_exit_breakdown.dir/fig07_exit_breakdown.cpp.o.d"
  "fig07_exit_breakdown"
  "fig07_exit_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_exit_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
