# Empty compiler generated dependencies file for fig07_exit_breakdown.
# This may be replaced when dependencies are built.
