# Empty dependencies file for fig19_vmdq_scale.
# This may be replaced when dependencies are built.
