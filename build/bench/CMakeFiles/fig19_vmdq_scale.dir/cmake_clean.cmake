file(REMOVE_RECURSE
  "CMakeFiles/fig19_vmdq_scale.dir/fig19_vmdq_scale.cpp.o"
  "CMakeFiles/fig19_vmdq_scale.dir/fig19_vmdq_scale.cpp.o.d"
  "fig19_vmdq_scale"
  "fig19_vmdq_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_vmdq_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
