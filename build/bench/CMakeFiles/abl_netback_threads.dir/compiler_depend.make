# Empty compiler generated dependencies file for abl_netback_threads.
# This may be replaced when dependencies are built.
