file(REMOVE_RECURSE
  "CMakeFiles/abl_netback_threads.dir/abl_netback_threads.cpp.o"
  "CMakeFiles/abl_netback_threads.dir/abl_netback_threads.cpp.o.d"
  "abl_netback_threads"
  "abl_netback_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_netback_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
