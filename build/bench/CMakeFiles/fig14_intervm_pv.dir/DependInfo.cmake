
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig14_intervm_pv.cpp" "bench/CMakeFiles/fig14_intervm_pv.dir/fig14_intervm_pv.cpp.o" "gcc" "bench/CMakeFiles/fig14_intervm_pv.dir/fig14_intervm_pv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sriov_sim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_drivers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_intr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_pci.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sriov_sim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
