# Empty compiler generated dependencies file for fig14_intervm_pv.
# This may be replaced when dependencies are built.
