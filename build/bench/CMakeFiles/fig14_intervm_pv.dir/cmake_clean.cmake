file(REMOVE_RECURSE
  "CMakeFiles/fig14_intervm_pv.dir/fig14_intervm_pv.cpp.o"
  "CMakeFiles/fig14_intervm_pv.dir/fig14_intervm_pv.cpp.o.d"
  "fig14_intervm_pv"
  "fig14_intervm_pv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_intervm_pv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
