# Empty dependencies file for fig08_aic_udp.
# This may be replaced when dependencies are built.
