file(REMOVE_RECURSE
  "CMakeFiles/fig08_aic_udp.dir/fig08_aic_udp.cpp.o"
  "CMakeFiles/fig08_aic_udp.dir/fig08_aic_udp.cpp.o.d"
  "fig08_aic_udp"
  "fig08_aic_udp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_aic_udp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
