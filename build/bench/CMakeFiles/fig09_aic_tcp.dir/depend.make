# Empty dependencies file for fig09_aic_tcp.
# This may be replaced when dependencies are built.
