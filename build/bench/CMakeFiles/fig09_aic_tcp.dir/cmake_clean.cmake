file(REMOVE_RECURSE
  "CMakeFiles/fig09_aic_tcp.dir/fig09_aic_tcp.cpp.o"
  "CMakeFiles/fig09_aic_tcp.dir/fig09_aic_tcp.cpp.o.d"
  "fig09_aic_tcp"
  "fig09_aic_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_aic_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
