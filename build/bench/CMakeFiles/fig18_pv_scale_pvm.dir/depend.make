# Empty dependencies file for fig18_pv_scale_pvm.
# This may be replaced when dependencies are built.
