file(REMOVE_RECURSE
  "CMakeFiles/fig18_pv_scale_pvm.dir/fig18_pv_scale_pvm.cpp.o"
  "CMakeFiles/fig18_pv_scale_pvm.dir/fig18_pv_scale_pvm.cpp.o.d"
  "fig18_pv_scale_pvm"
  "fig18_pv_scale_pvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_pv_scale_pvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
