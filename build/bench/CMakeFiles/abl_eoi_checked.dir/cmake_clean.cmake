file(REMOVE_RECURSE
  "CMakeFiles/abl_eoi_checked.dir/abl_eoi_checked.cpp.o"
  "CMakeFiles/abl_eoi_checked.dir/abl_eoi_checked.cpp.o.d"
  "abl_eoi_checked"
  "abl_eoi_checked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_eoi_checked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
