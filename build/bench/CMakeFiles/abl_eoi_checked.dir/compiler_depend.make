# Empty compiler generated dependencies file for abl_eoi_checked.
# This may be replaced when dependencies are built.
