file(REMOVE_RECURSE
  "CMakeFiles/fig06_mask_unmask.dir/fig06_mask_unmask.cpp.o"
  "CMakeFiles/fig06_mask_unmask.dir/fig06_mask_unmask.cpp.o.d"
  "fig06_mask_unmask"
  "fig06_mask_unmask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_mask_unmask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
