# Empty dependencies file for fig06_mask_unmask.
# This may be replaced when dependencies are built.
