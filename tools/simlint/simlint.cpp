#include "simlint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace simlint {

namespace {

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

enum class TokKind { Ident, Number, Punct };

struct Token
{
    TokKind kind;
    std::string text;
    int line;
};

struct Comment
{
    int line;              ///< line the comment starts on
    std::string text;      ///< body without the // or /* */ markers
};

struct Lexed
{
    std::vector<Token> toks;
    std::vector<Comment> comments;
};

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identCont(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Tokenize C++ source: identifiers, numbers and punctuation survive;
 * comments are collected separately; string/char literals and
 * preprocessor directives are dropped entirely so nothing inside them
 * can pattern-match a rule. "::" and "->" lex as single tokens (the
 * qualifier checks need them atomic); every other punctuation
 * character is its own token.
 */
Lexed
lex(const std::string &s)
{
    Lexed out;
    std::size_t i = 0, n = s.size();
    int line = 1;
    bool at_line_start = true;

    auto newline = [&]() { ++line; at_line_start = true; };

    while (i < n) {
        char c = s[i];
        if (c == '\n') {
            newline();
            ++i;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
            ++i;
            continue;
        }
        // Preprocessor directive: swallow the whole (continued) line.
        if (c == '#' && at_line_start) {
            while (i < n) {
                if (s[i] == '\\' && i + 1 < n && s[i + 1] == '\n') {
                    newline();
                    i += 2;
                    continue;
                }
                if (s[i] == '\n')
                    break;
                ++i;
            }
            continue;
        }
        at_line_start = false;
        // Comments.
        if (c == '/' && i + 1 < n && s[i + 1] == '/') {
            std::size_t j = i + 2;
            while (j < n && s[j] != '\n')
                ++j;
            out.comments.push_back({line, s.substr(i + 2, j - i - 2)});
            i = j;
            continue;
        }
        if (c == '/' && i + 1 < n && s[i + 1] == '*') {
            int start_line = line;
            std::size_t j = i + 2;
            std::string body;
            while (j + 1 < n && !(s[j] == '*' && s[j + 1] == '/')) {
                if (s[j] == '\n')
                    ++line;
                body += s[j];
                ++j;
            }
            out.comments.push_back({start_line, body});
            i = (j + 1 < n) ? j + 2 : n;
            continue;
        }
        // Raw string literal R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && s[i + 1] == '"') {
            std::size_t j = i + 2;
            std::string delim;
            while (j < n && s[j] != '(')
                delim += s[j++];
            std::string close = ")" + delim + "\"";
            std::size_t end = s.find(close, j);
            if (end == std::string::npos)
                end = n;
            for (std::size_t k = i; k < end && k < n; ++k)
                if (s[k] == '\n')
                    ++line;
            i = std::min(n, end + close.size());
            continue;
        }
        // String / char literal (with escapes).
        if (c == '"' || c == '\'') {
            char q = c;
            std::size_t j = i + 1;
            while (j < n && s[j] != q) {
                if (s[j] == '\\' && j + 1 < n)
                    ++j;
                if (s[j] == '\n')
                    ++line;
                ++j;
            }
            i = (j < n) ? j + 1 : n;
            continue;
        }
        if (identStart(c)) {
            std::size_t j = i + 1;
            while (j < n && identCont(s[j]))
                ++j;
            out.toks.push_back({TokKind::Ident, s.substr(i, j - i), line});
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i + 1;
            while (j < n
                   && (identCont(s[j]) || s[j] == '.' || s[j] == '\''
                       || ((s[j] == '+' || s[j] == '-')
                           && (s[j - 1] == 'e' || s[j - 1] == 'E'
                               || s[j - 1] == 'p' || s[j - 1] == 'P'))))
                ++j;
            out.toks.push_back({TokKind::Number, s.substr(i, j - i), line});
            i = j;
            continue;
        }
        if (c == ':' && i + 1 < n && s[i + 1] == ':') {
            out.toks.push_back({TokKind::Punct, "::", line});
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && s[i + 1] == '>') {
            out.toks.push_back({TokKind::Punct, "->", line});
            i += 2;
            continue;
        }
        out.toks.push_back({TokKind::Punct, std::string(1, c), line});
        ++i;
    }
    return out;
}

// ---------------------------------------------------------------------
// Directives (suppressions, hot annotations)
// ---------------------------------------------------------------------

struct Directives
{
    /** line -> rules allowed on that line (and the line below). */
    std::map<int, std::set<std::string>> allows;
    std::vector<int> hot_lines;
    /** `simlint: fluid-settle` lines — each blesses the function body
     *  below it as a legitimate settlement-ledger touch point. */
    std::vector<int> settle_lines;
    std::vector<Finding> errors;    ///< malformed directives
};

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

Directives
parseDirectives(const std::string &file, const std::vector<Comment> &comments)
{
    Directives d;
    for (const Comment &c : comments) {
        // A directive comment *starts* with "simlint:" (so prose that
        // merely mentions simlint is not parsed as one).
        std::string body = trim(c.text);
        if (body.rfind("simlint:", 0) != 0)
            continue;
        std::string rest = trim(body.substr(8));
        if (rest == "hot" || rest.rfind("hot ", 0) == 0) {
            d.hot_lines.push_back(c.line);
            continue;
        }
        if (rest == "fluid-settle" || rest.rfind("fluid-settle ", 0) == 0) {
            d.settle_lines.push_back(c.line);
            continue;
        }
        if (rest.rfind("allow", 0) == 0) {
            std::size_t open = rest.find('(');
            std::size_t close = rest.find(')');
            if (open == std::string::npos || close == std::string::npos
                || close < open) {
                d.errors.push_back({file, c.line, "bad-suppression",
                                    "malformed simlint:allow directive "
                                    "(want simlint:allow(rule): reason)"});
                continue;
            }
            std::string rules = rest.substr(open + 1, close - open - 1);
            std::string tail = trim(rest.substr(close + 1));
            if (tail.empty() || tail[0] != ':'
                || trim(tail.substr(1)).empty()) {
                d.errors.push_back({file, c.line, "bad-suppression",
                                    "simlint:allow without a reason "
                                    "(append ': why this is legitimate')"});
                continue;
            }
            std::stringstream ss(rules);
            std::string r;
            while (std::getline(ss, r, ',')) {
                r = trim(r);
                if (r.empty())
                    continue;
                if (!knownRule(r)) {
                    d.errors.push_back({file, c.line, "bad-suppression",
                                        "simlint:allow names unknown rule '"
                                            + r + "'"});
                    continue;
                }
                d.allows[c.line].insert(r);
            }
            continue;
        }
        d.errors.push_back({file, c.line, "bad-suppression",
                            "unrecognized simlint directive '" + rest
                                + "'"});
    }
    return d;
}

// ---------------------------------------------------------------------
// Shared token helpers
// ---------------------------------------------------------------------

bool
isIdent(const Token &t, const char *s)
{
    return t.kind == TokKind::Ident && t.text == s;
}

bool
isPunct(const Token &t, const char *s)
{
    return t.kind == TokKind::Punct && t.text == s;
}

/** Index of the matching closer for the opener at @p i, or n. */
std::size_t
matchFrom(const std::vector<Token> &t, std::size_t i, const char *open,
          const char *close)
{
    int depth = 0;
    for (std::size_t j = i; j < t.size(); ++j) {
        if (isPunct(t[j], open))
            ++depth;
        else if (isPunct(t[j], close) && --depth == 0)
            return j;
    }
    return t.size();
}

/**
 * Names in this translation unit (and its sibling) whose type is an
 * unordered associative container: variables, members, and functions
 * returning one — plus names declared with a `using X = unordered_*`
 * alias.
 */
std::set<std::string>
collectUnorderedNames(const std::vector<Token> &t)
{
    static const std::set<std::string> kContainers = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    std::set<std::string> names;
    std::set<std::string> aliases;

    auto declNameAfterTemplate = [&](std::size_t i) -> std::size_t {
        // i points at the container ident; returns index of the
        // declared name token, or npos-equivalent t.size().
        std::size_t j = i + 1;
        if (j < t.size() && isPunct(t[j], "<")) {
            int depth = 0;
            for (; j < t.size(); ++j) {
                if (isPunct(t[j], "<"))
                    ++depth;
                else if (isPunct(t[j], ">") && --depth == 0) {
                    ++j;
                    break;
                }
            }
        }
        while (j < t.size()
               && (isPunct(t[j], "*") || isPunct(t[j], "&")
                   || isIdent(t[j], "const")))
            ++j;
        if (j < t.size() && t[j].kind == TokKind::Ident)
            return j;
        return t.size();
    };

    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident
            || kContainers.count(t[i].text) == 0)
            continue;
        // using Alias = std::unordered_map<...>; — walk back to the
        // statement start looking for `using <name> =`.
        bool is_alias = false;
        for (std::size_t k = i; k > 0;) {
            --k;
            if (isPunct(t[k], ";") || isPunct(t[k], "{")
                || isPunct(t[k], "}"))
                break;
            if (isIdent(t[k], "using")) {
                if (k + 2 < t.size() && t[k + 1].kind == TokKind::Ident
                    && isPunct(t[k + 2], "=")) {
                    aliases.insert(t[k + 1].text);
                    is_alias = true;
                }
                break;
            }
        }
        if (is_alias)
            continue;
        std::size_t name = declNameAfterTemplate(i);
        if (name < t.size())
            names.insert(t[name].text);
    }
    // Declarations through an alias: `Alias x;` / `Alias &x = ...`.
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident || aliases.count(t[i].text) == 0)
            continue;
        if (i > 0 && (isPunct(t[i - 1], "::") || isPunct(t[i - 1], ".")
                      || isPunct(t[i - 1], "->")))
            continue;
        std::size_t j = i + 1;
        while (j < t.size()
               && (isPunct(t[j], "*") || isPunct(t[j], "&")
                   || isIdent(t[j], "const")))
            ++j;
        if (j < t.size() && t[j].kind == TokKind::Ident)
            names.insert(t[j].text);
    }
    return names;
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

const char *const kNoWallclock = "no-wallclock";
const char *const kNoUnorderedIter = "no-unordered-iteration";
const char *const kExplicitCapture = "explicit-capture";
const char *const kHotPathAlloc = "hot-path-alloc";
const char *const kBadSuppression = "bad-suppression";
const char *const kShardChannel = "shard-channel";
const char *const kFluidBoundary = "fluid-boundary";

/** Qualifier of identifier at @p i: "" (unqualified), "std"/"chrono"
 *  (standard library), "member" (after . or ->), or another name. */
std::string
qualifierOf(const std::vector<Token> &t, std::size_t i)
{
    if (i == 0)
        return "";
    if (isPunct(t[i - 1], ".") || isPunct(t[i - 1], "->"))
        return "member";
    if (isPunct(t[i - 1], "::")) {
        if (i >= 2 && t[i - 2].kind == TokKind::Ident)
            return t[i - 2].text;
        return "::";    // global-namespace qualified
    }
    return "";
}

void
ruleNoWallclock(const std::string &file, const std::vector<Token> &t,
                std::vector<Finding> &out)
{
    // Types/objects whose mere mention means host time or ambient
    // entropy; and functions that read them when called.
    static const std::set<std::string> kBannedAlways = {
        "steady_clock",    "system_clock", "high_resolution_clock",
        "random_device",   "mt19937",      "mt19937_64",
        "default_random_engine"};
    // Unqualified-call bans. Bare `clock` is deliberately absent:
    // accessor members named clock() (sim::Tracer has one) collide,
    // and the chrono clock types above already cover host time.
    static const std::set<std::string> kBannedCalls = {
        "time",     "gettimeofday", "clock_gettime", "localtime",
        "gmtime",   "rand",         "srand",         "random",
        "drand48"};
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident)
            continue;
        std::string q = qualifierOf(t, i);
        if (q == "member")
            continue;    // someone's .time() accessor, not ::time()
        if (!q.empty() && q != "std" && q != "chrono" && q != "::")
            continue;    // qualified by a project namespace
        if (kBannedAlways.count(t[i].text) != 0) {
            out.push_back({file, t[i].line, kNoWallclock,
                           "'" + t[i].text
                               + "' is host wallclock/entropy; use sim "
                                 "time (sim::Time) or sim::Random"});
            continue;
        }
        if (kBannedCalls.count(t[i].text) != 0 && i + 1 < t.size()
            && isPunct(t[i + 1], "(")) {
            out.push_back({file, t[i].line, kNoWallclock,
                           "call to '" + t[i].text
                               + "()' reads host wallclock/entropy; "
                                 "simulations must be a pure function "
                                 "of the seed"});
        }
    }
}

void
ruleShardChannel(const std::string &file, const std::vector<Token> &t,
                 std::vector<Finding> &out)
{
    // Raw cross-island plumbing outside the engine/wire: a push into a
    // ShardChannel carries no lookahead contract, so the receiving
    // island may already have executed past its due time — silent
    // causality violation, not a crash. nic::Wire is the only legal
    // shard boundary (DESIGN.md §13): its send path asserts due >=
    // now + propagation on every message.
    static const std::set<std::string> kRawShardTypes = {"ShardChannel",
                                                         "ShardEdge"};
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident
            || kRawShardTypes.count(t[i].text) == 0)
            continue;
        if (qualifierOf(t, i) == "member")
            continue;
        out.push_back({file, t[i].line, kShardChannel,
                       "'" + t[i].text
                           + "' outside src/sim/shard_*/nic::Wire: "
                             "raw cross-island sends bypass the "
                             "lookahead contract; route cross-shard "
                             "traffic through nic::Wire (the only "
                             "legal shard boundary, DESIGN.md #13)"});
    }
}

void
ruleFluidBoundary(const std::string &file, const std::vector<Token> &t,
                  const std::vector<int> &settle_lines,
                  std::vector<Finding> &out)
{
    // The fluid equivalence contract (DESIGN.md §14) rests on the
    // settlement ledger seeing *every* send and every flow birth/death:
    // a component that holds the FlowLedger and mutates it from an
    // unannotated site can fabricate a steadiness certificate the probe
    // protocol never checked. Mere possession of the ledger is the
    // boundary — anything that can name it can mutate it — so any
    // mention outside src/sim/fluid.* and src/core/fluid_path.* must
    // sit inside a function blessed with `// simlint: fluid-settle`.
    // fluidTransition/fluidTransitionAll are deliberately NOT policed:
    // they only force exact mode, which is always conservative.
    static const std::set<std::string> kLedgerNames = {
        "FlowLedger", "fluidLedger", "setFluidLedger", "warpBy"};

    // Settle regions: the first brace block after each annotation.
    std::vector<std::pair<int, int>> regions;
    for (int settle : settle_lines) {
        std::size_t open = t.size();
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i].line > settle && isPunct(t[i], "{")) {
                open = i;
                break;
            }
        }
        if (open == t.size()) {
            out.push_back({file, settle, kFluidBoundary,
                           "simlint: fluid-settle annotation with no "
                           "function body following it"});
            continue;
        }
        std::size_t close = matchFrom(t, open, "{", "}");
        regions.emplace_back(t[open].line,
                             close < t.size() ? t[close].line
                                              : t.back().line);
    }

    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident
            || kLedgerNames.count(t[i].text) == 0)
            continue;
        bool blessed = false;
        for (const auto &[lo, hi] : regions) {
            if (t[i].line >= lo && t[i].line <= hi) {
                blessed = true;
                break;
            }
        }
        if (blessed)
            continue;
        out.push_back({file, t[i].line, kFluidBoundary,
                       "'" + t[i].text
                           + "' touches the settlement ledger outside "
                             "sim/fluid.*: mutations the ledger does "
                             "not witness can fabricate a steadiness "
                             "certificate; move this into an annotated "
                             "settle site (`// simlint: fluid-settle` "
                             "above the function)"});
    }
}

void
ruleNoUnorderedIteration(const std::string &file,
                         const std::vector<Token> &t,
                         const std::set<std::string> &unordered,
                         std::vector<Finding> &out)
{
    if (unordered.empty())
        return;
    // Only the begin-family: `it != x.end()` after a find() is the
    // dominant non-iterating idiom and must not trip the rule.
    static const std::set<std::string> kIterFns = {"begin", "cbegin",
                                                   "rbegin", "crbegin"};
    for (std::size_t i = 0; i < t.size(); ++i) {
        // Range-for whose sequence expression mentions an unordered
        // container: for (... : expr).
        if (isIdent(t[i], "for") && i + 1 < t.size()
            && isPunct(t[i + 1], "(")) {
            std::size_t close = matchFrom(t, i + 1, "(", ")");
            int depth = 0;
            std::size_t colon = t.size();
            for (std::size_t j = i + 1; j < close; ++j) {
                if (isPunct(t[j], "(") || isPunct(t[j], "[")
                    || isPunct(t[j], "{"))
                    ++depth;
                else if (isPunct(t[j], ")") || isPunct(t[j], "]")
                         || isPunct(t[j], "}"))
                    --depth;
                else if (depth == 1 && isPunct(t[j], ":")) {
                    colon = j;
                    break;
                }
            }
            for (std::size_t j = colon; j < close; ++j) {
                if (t[j].kind == TokKind::Ident
                    && unordered.count(t[j].text) != 0) {
                    out.push_back(
                        {file, t[j].line, kNoUnorderedIter,
                         "iteration over unordered container '"
                             + t[j].text
                             + "': order is hash/address-dependent and "
                               "can leak into digests and reports; use "
                               "an ordered/index-keyed container or a "
                               "sorted snapshot"});
                    break;
                }
            }
            continue;
        }
        // Explicit iterator walk: x.begin() / x.cend() on an
        // unordered name.
        if (t[i].kind == TokKind::Ident && unordered.count(t[i].text) != 0
            && i + 3 < t.size()
            && (isPunct(t[i + 1], ".") || isPunct(t[i + 1], "->"))
            && t[i + 2].kind == TokKind::Ident
            && kIterFns.count(t[i + 2].text) != 0
            && isPunct(t[i + 3], "(")) {
            out.push_back({file, t[i].line, kNoUnorderedIter,
                           "'" + t[i].text + "." + t[i + 2].text
                               + "()' iterates an unordered container; "
                                 "order is hash/address-dependent"});
        }
    }
}

void
ruleExplicitCapture(const std::string &file, const std::vector<Token> &t,
                    std::vector<Finding> &out)
{
    static const std::set<std::string> kSchedulers = {"scheduleAt",
                                                      "scheduleIn"};
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident
            || kSchedulers.count(t[i].text) == 0
            || !isPunct(t[i + 1], "("))
            continue;
        std::size_t close = matchFrom(t, i + 1, "(", ")");
        for (std::size_t j = i + 2; j + 2 < close; ++j) {
            if (!isPunct(t[j], "["))
                continue;
            bool deflt = (isPunct(t[j + 1], "&") || isPunct(t[j + 1], "="))
                && (isPunct(t[j + 2], ",") || isPunct(t[j + 2], "]"));
            if (deflt) {
                out.push_back(
                    {file, t[j].line, kExplicitCapture,
                     "default capture [" + t[j + 1].text
                         + "] in lambda passed to " + t[i].text
                         + "(): captures must be explicit — by fire "
                           "time a defaulted reference is a dangling "
                           "bug the slot map cannot catch"});
            }
        }
    }
}

void
ruleHotPathAlloc(const std::string &file, const std::vector<Token> &t,
                 const std::vector<int> &hot_lines,
                 std::vector<Finding> &out)
{
    if (hot_lines.empty())
        return;
    static const std::set<std::string> kAllocCalls = {
        "make_unique", "make_shared", "malloc",       "calloc",
        "realloc",     "strdup",      "aligned_alloc"};
    static const std::set<std::string> kGrowthCalls = {
        "push_back", "emplace_back", "push_front", "emplace_front",
        "resize",    "reserve",      "insert",     "emplace",
        "append"};
    for (int hot : hot_lines) {
        // The hot region is the first brace block opening after the
        // annotation line (the function body).
        std::size_t open = t.size();
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i].line > hot && isPunct(t[i], "{")) {
                open = i;
                break;
            }
        }
        if (open == t.size()) {
            out.push_back({file, hot, kHotPathAlloc,
                           "simlint: hot annotation with no function "
                           "body following it"});
            continue;
        }
        std::size_t close = matchFrom(t, open, "{", "}");
        for (std::size_t i = open + 1; i < close; ++i) {
            if (isIdent(t[i], "new")) {
                out.push_back({file, t[i].line, kHotPathAlloc,
                               "operator new in a `simlint: hot` "
                               "function; the wire->L2->ring->DMA->"
                               "MSI-X path must not allocate"});
                continue;
            }
            if (t[i].kind == TokKind::Ident
                && kAllocCalls.count(t[i].text) != 0 && i + 1 < t.size()
                && (isPunct(t[i + 1], "(") || isPunct(t[i + 1], "<"))) {
                out.push_back({file, t[i].line, kHotPathAlloc,
                               "'" + t[i].text
                                   + "' allocates in a `simlint: hot` "
                                     "function"});
                continue;
            }
            if (i > 0
                && (isPunct(t[i - 1], ".") || isPunct(t[i - 1], "->"))
                && t[i].kind == TokKind::Ident
                && kGrowthCalls.count(t[i].text) != 0 && i + 1 < t.size()
                && isPunct(t[i + 1], "(")) {
                out.push_back({file, t[i].line, kHotPathAlloc,
                               "container growth call '" + t[i].text
                                   + "' in a `simlint: hot` function; "
                                     "pre-size outside the hot path or "
                                     "suppress with the reason it "
                                     "cannot grow here"});
            }
        }
    }
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

bool
pathInSrc(const std::string &path)
{
    namespace fs = std::filesystem;
    for (const auto &part : fs::path(path))
        if (part == "src")
            return true;
    return false;
}

/** src/sim/shard_* (and shard.cpp/hpp): the shard engine is the one
 *  component whose business IS host threads, so the wallclock and
 *  unordered-iteration heuristics are scoped out of it — its worker
 *  loops name std::thread/atomics in patterns the token rules
 *  misread, and host-side backoff tuning may legitimately read a
 *  monotonic clock that never feeds simulated time. Everything else
 *  under src/ stays strict. */
bool
isShardEngineFile(const std::string &path)
{
    namespace fs = std::filesystem;
    fs::path p(path);
    return pathInSrc(path) && p.parent_path().filename() == "sim"
        && p.filename().string().rfind("shard", 0) == 0;
}

/** src/nic/wire.*: the lookahead-bearing shard boundary itself — the
 *  one legitimate ShardChannel user outside the engine. */
bool
isWireFile(const std::string &path)
{
    namespace fs = std::filesystem;
    fs::path p(path);
    return pathInSrc(path) && p.parent_path().filename() == "nic"
        && p.filename().string().rfind("wire", 0) == 0;
}

/** src/sim/fluid.*, src/core/fluid_path.* and the cross-shard
 *  core/warp_coordinator.*: the fluid engine itself, where ledger
 *  mutation is the whole job. */
bool
isFluidCoreFile(const std::string &path)
{
    namespace fs = std::filesystem;
    fs::path p(path);
    if (!pathInSrc(path))
        return false;
    std::string dir = p.parent_path().filename().string();
    std::string name = p.filename().string();
    return (dir == "sim" && name.rfind("fluid", 0) == 0)
        || (dir == "core" && name.rfind("fluid_path", 0) == 0)
        || (dir == "core" && name.rfind("warp_coordinator", 0) == 0);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c) & 0xffu);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

const std::vector<std::string> &
allRules()
{
    static const std::vector<std::string> kRules = {
        kNoWallclock,  kNoUnorderedIter, kExplicitCapture,
        kHotPathAlloc, kBadSuppression,  kShardChannel,
        kFluidBoundary};
    return kRules;
}

bool
knownRule(const std::string &rule)
{
    const auto &r = allRules();
    return std::find(r.begin(), r.end(), rule) != r.end();
}

std::vector<Finding>
lintText(const std::string &path, const std::string &text,
         const std::string &sibling_text, const Options &opts,
         std::size_t *suppressed)
{
    Lexed lx = lex(text);
    Directives dir = parseDirectives(path, lx.comments);

    std::set<std::string> unordered = collectUnorderedNames(lx.toks);
    if (!sibling_text.empty()) {
        Lexed sib = lex(sibling_text);
        std::set<std::string> more = collectUnorderedNames(sib.toks);
        unordered.insert(more.begin(), more.end());
    }

    auto enabled = [&](const char *rule) {
        return opts.rules.empty()
            || std::find(opts.rules.begin(), opts.rules.end(), rule)
                   != opts.rules.end();
    };

    std::vector<Finding> raw;
    if (enabled(kNoWallclock) && pathInSrc(path)
        && !isShardEngineFile(path))
        ruleNoWallclock(path, lx.toks, raw);
    if (enabled(kNoUnorderedIter) && !isShardEngineFile(path))
        ruleNoUnorderedIteration(path, lx.toks, unordered, raw);
    if (enabled(kShardChannel) && !isShardEngineFile(path)
        && !isWireFile(path))
        ruleShardChannel(path, lx.toks, raw);
    if (enabled(kFluidBoundary) && pathInSrc(path)
        && !isFluidCoreFile(path))
        ruleFluidBoundary(path, lx.toks, dir.settle_lines, raw);
    if (enabled(kExplicitCapture))
        ruleExplicitCapture(path, lx.toks, raw);
    if (enabled(kHotPathAlloc))
        ruleHotPathAlloc(path, lx.toks, dir.hot_lines, raw);

    std::vector<Finding> out;
    std::size_t nsupp = 0;
    for (Finding &f : raw) {
        bool allowed = false;
        for (int l : {f.line, f.line - 1}) {
            auto it = dir.allows.find(l);
            if (it != dir.allows.end() && it->second.count(f.rule) != 0) {
                allowed = true;
                break;
            }
        }
        if (allowed)
            ++nsupp;
        else
            out.push_back(std::move(f));
    }
    // Malformed directives are always errors: a waiver that cannot be
    // audited is worse than the finding it hides.
    out.insert(out.end(), dir.errors.begin(), dir.errors.end());

    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    if (suppressed != nullptr)
        *suppressed += nsupp;
    return out;
}

RunResult
runPaths(const std::vector<std::string> &paths, const Options &opts)
{
    namespace fs = std::filesystem;
    static const std::set<std::string> kExts = {".hpp", ".cpp", ".h",
                                                ".cc", ".hh", ".cxx"};
    static const std::set<std::string> kExcludedDirs = {
        "build", ".git", "simlint_fixtures"};

    std::vector<std::string> files;
    for (const std::string &p : paths) {
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            // The excludes apply to an explicitly named root too, so
            // `simlint tests` and `simlint tests/simlint_fixtures`
            // agree; --no-default-excludes opts into the corpus.
            if (opts.default_excludes
                && kExcludedDirs.count(
                       fs::path(p).filename().string())
                    != 0)
                continue;
            auto it = fs::recursive_directory_iterator(
                p, fs::directory_options::skip_permission_denied, ec);
            for (auto end = fs::recursive_directory_iterator();
                 it != end; ++it) {
                if (it->is_directory()
                    && opts.default_excludes
                    && kExcludedDirs.count(
                           it->path().filename().string())
                        != 0) {
                    it.disable_recursion_pending();
                    continue;
                }
                if (it->is_regular_file()
                    && kExts.count(it->path().extension().string()) != 0)
                    files.push_back(it->path().string());
            }
        } else {
            files.push_back(p);
        }
    }
    // Directory iteration order is filesystem-dependent; simlint's own
    // output must not be.
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    auto readAll = [](const std::string &p, std::string &out) {
        std::ifstream in(p, std::ios::binary);
        if (!in)
            return false;
        std::ostringstream ss;
        ss << in.rdbuf();
        out = ss.str();
        return true;
    };

    RunResult r;
    for (const std::string &f : files) {
        std::string text;
        if (!readAll(f, text)) {
            r.findings.push_back(
                {f, 0, "io-error", "cannot read file"});
            continue;
        }
        // The paired header/source contributes its unordered-type
        // declarations, so a .cpp iterating a member declared in its
        // .hpp is still caught.
        fs::path sib(f);
        sib.replace_extension(sib.extension() == ".cpp" ? ".hpp"
                                                        : ".cpp");
        std::string sibling_text;
        std::error_code ec;
        if (fs::is_regular_file(sib, ec))
            (void)readAll(sib.string(), sibling_text);

        auto fnd = lintText(f, text, sibling_text, opts, &r.suppressed);
        r.findings.insert(r.findings.end(), fnd.begin(), fnd.end());
        ++r.files_scanned;
    }
    return r;
}

std::string
toJson(const RunResult &r)
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"simlint/v1\",\n";
    os << "  \"files_scanned\": " << r.files_scanned << ",\n";
    os << "  \"suppressed\": " << r.suppressed << ",\n";
    os << "  \"findings\": [";
    for (std::size_t i = 0; i < r.findings.size(); ++i) {
        const Finding &f = r.findings[i];
        os << (i != 0 ? "," : "") << "\n    {\"file\": \""
           << jsonEscape(f.file) << "\", \"line\": " << f.line
           << ", \"rule\": \"" << jsonEscape(f.rule)
           << "\", \"message\": \"" << jsonEscape(f.message) << "\"}";
    }
    os << (r.findings.empty() ? "]\n" : "\n  ]\n") << "}\n";
    return os.str();
}

} // namespace simlint
