/**
 * @file
 * simlint: a repo-specific determinism & hot-path static analyzer.
 *
 * The simulator's two load-bearing contracts — bit-for-bit determinism
 * (run-twice digests, thin-vs-exact byte-identical reports) and
 * zero-allocation hot paths (the operator-new bench gate) — are
 * enforced at runtime only where a test happens to exercise them.
 * simlint makes the bug *classes* behind both contracts visible at
 * lint time, before a change ships:
 *
 *   no-wallclock             host clocks / ambient randomness in src/
 *                            (sim time and sim::Random only)
 *   no-unordered-iteration   iterating std::unordered_map/set, whose
 *                            order can leak into digests and reports
 *   explicit-capture         [&]/[=] default captures in lambdas
 *                            passed to scheduleAt/scheduleIn (dangling
 *                            by fire time; slot map can't catch it)
 *   hot-path-alloc           new/make_unique/container-growth inside
 *                            functions annotated `// simlint: hot`
 *   fluid-boundary           naming the fluid settlement ledger
 *                            (FlowLedger / fluidLedger / warpBy)
 *                            outside sim/fluid.*, core/fluid_path.*,
 *                            core/warp_coordinator.* and functions
 *                            annotated
 *                            `// simlint: fluid-settle` — unwitnessed
 *                            ledger mutation can fabricate the
 *                            steadiness certificate fluid warps
 *                            rest on
 *
 * simlint is deliberately *not* a compiler: a hand-rolled lexer over
 * the token stream (comments, strings and preprocessor lines
 * stripped), plus a few shape-matching passes. That keeps it
 * dependency-free — it builds and runs wherever CI does, no libclang —
 * at the cost of being heuristic. The rules are tuned to this
 * codebase's idioms; anything a rule gets wrong is silenced in place
 * with a reasoned suppression:
 *
 *   // simlint:allow(rule-name): reason the rule is wrong here
 *
 * on the finding's line or the line directly above. A suppression
 * without a reason is itself an error, so waivers stay auditable.
 *
 * Hot functions are annotated with a comment line directly above the
 * definition:
 *
 *   // simlint: hot
 *   void NicPort::finishRx(...)  { ... }
 *
 * and the rule applies to the function's whole brace block.
 */

#ifndef SRIOV_TOOLS_SIMLINT_HPP
#define SRIOV_TOOLS_SIMLINT_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace simlint {

struct Finding
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
};

struct Options
{
    /** Rules to run; empty means every rule. Unknown names are errors. */
    std::vector<std::string> rules;
    /**
     * Skip directories named in kDefaultExcludes (build trees and the
     * known-bad fixture corpus). The fixture tests disable this.
     */
    bool default_excludes = true;
};

/** All rule names, in reporting order. */
const std::vector<std::string> &allRules();

/** True if @p rule is a known rule name. */
bool knownRule(const std::string &rule);

/**
 * Lint one file's text. @p path decides rule scoping — no-wallclock
 * only applies under a src/ directory. @p sibling_text is the paired
 * header/source contents ("" if none) and is consulted only to learn
 * which member names have unordered container types.
 *
 * Returns unsuppressed findings; @p suppressed (optional) counts the
 * findings silenced by simlint:allow directives.
 */
std::vector<Finding> lintText(const std::string &path,
                              const std::string &text,
                              const std::string &sibling_text,
                              const Options &opts,
                              std::size_t *suppressed = nullptr);

struct RunResult
{
    std::vector<Finding> findings;
    std::size_t files_scanned = 0;
    std::size_t suppressed = 0;
};

/**
 * Lint files and directories (recursing over .hpp and .cpp files).
 * Sibling header/source pairs are discovered automatically.
 */
RunResult runPaths(const std::vector<std::string> &paths,
                   const Options &opts);

/** Machine-readable result (schema "simlint/v1"). */
std::string toJson(const RunResult &r);

} // namespace simlint

#endif // SRIOV_TOOLS_SIMLINT_HPP
