/**
 * @file
 * simlint CLI.
 *
 *   simlint [options] <file-or-dir>...
 *
 *   --rules=r1,r2,...   run only the named rules (default: all)
 *   --json=PATH         also write machine-readable findings
 *   --list-rules        print rule names and exit
 *   --no-default-excludes
 *                       lint build/ and simlint_fixtures/ dirs too
 *                       (used by simlint's own fixture tests)
 *
 * Exit status: 0 clean, 1 findings, 2 usage or I/O error.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "simlint.hpp"

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: simlint [--rules=r1,r2] [--json=PATH] "
                 "[--list-rules] [--no-default-excludes] <paths...>\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    simlint::Options opts;
    std::vector<std::string> paths;
    std::string json_path;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--list-rules") {
            for (const std::string &r : simlint::allRules())
                std::printf("%s\n", r.c_str());
            return 0;
        }
        if (a.rfind("--rules=", 0) == 0) {
            std::stringstream ss(a.substr(8));
            std::string r;
            while (std::getline(ss, r, ',')) {
                if (r.empty())
                    continue;
                if (!simlint::knownRule(r)) {
                    std::fprintf(stderr,
                                 "simlint: unknown rule '%s' "
                                 "(--list-rules to see them)\n",
                                 r.c_str());
                    return 2;
                }
                opts.rules.push_back(r);
            }
            continue;
        }
        if (a.rfind("--json=", 0) == 0) {
            json_path = a.substr(7);
            continue;
        }
        if (a == "--no-default-excludes") {
            opts.default_excludes = false;
            continue;
        }
        if (!a.empty() && a[0] == '-')
            return usage();
        paths.push_back(a);
    }
    if (paths.empty())
        return usage();

    simlint::RunResult r = simlint::runPaths(paths, opts);

    for (const simlint::Finding &f : r.findings)
        std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                    f.rule.c_str(), f.message.c_str());
    std::fprintf(stderr,
                 "simlint: %zu file(s), %zu finding(s), "
                 "%zu suppressed\n",
                 r.files_scanned, r.findings.size(), r.suppressed);

    if (!json_path.empty()) {
        std::ofstream out(json_path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "simlint: cannot write %s\n",
                         json_path.c_str());
            return 2;
        }
        out << simlint::toJson(r);
    }
    return r.findings.empty() ? 0 : 1;
}
