/**
 * @file
 * Merge every bench report in a directory into one machine-readable
 * BENCH_summary.json: per-figure pass/fail plus every expectation's
 * actual/expected/delta. This is the repo-level trajectory file — one
 * line per figure of how close the simulation tracks the paper.
 *
 *   bench_summary <dir-with-figXX.json> [out.json]
 *
 * With --perf, merge the <bench>.perf.json host-performance sidecars
 * instead (schema sriov-bench-perf/v1) into BENCH_perf.json: per-bench
 * events/host-seconds/events-per-second — the repo's wall-clock
 * trajectory, tracking how fast the simulator itself runs.
 *
 *   bench_summary --perf <dir-with-*.perf.json> [out.json]
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/report.hpp"

using sriov::obs::JsonValue;
using sriov::obs::JsonWriter;

namespace {

std::optional<JsonValue>
loadJson(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string err;
    auto doc = JsonValue::parseTolerant(ss.str(), &err);
    if (!doc)
        std::fprintf(stderr, "bench_summary: %s: %s\n", path.c_str(),
                     err.c_str());
    return doc;
}

double
num(const JsonValue &v, const char *k)
{
    const JsonValue *f = v.find(k);
    return f != nullptr ? f->number : 0.0;
}

/** Merge *.perf.json sidecars into a BENCH_perf.json trajectory. */
int
summarizePerf(const std::vector<std::string> &files,
              const std::string &out_path)
{
    JsonWriter w;
    w.beginObject();
    w.kv("schema", "sriov-bench-perf-summary/v1");
    w.key("benches").beginArray();
    std::size_t benches = 0;
    double grand_events = 0, grand_wall = 0;
    for (const std::string &path : files) {
        auto doc = loadJson(path);
        if (!doc)
            return 1;
        const JsonValue *schema = doc->find("schema");
        if (schema == nullptr || schema->str != "sriov-bench-perf/v1") {
            std::fprintf(stderr,
                         "bench_summary: %s: not a perf sidecar\n",
                         path.c_str());
            continue;
        }
        const JsonValue *bench = doc->find("bench");
        const JsonValue *total = doc->find("total");
        const JsonValue *cases = doc->find("cases");
        w.beginObject();
        w.kv("bench", bench != nullptr ? bench->str : path);
        w.kv("jobs", num(*doc, "jobs"));
        // Simulation mode rides into the summary so perf_compare can
        // refuse to judge a sharded run against a sequential baseline
        // (absent keys = the pre-shard defaults: thinning on, shards 0).
        const JsonValue *thin = doc->find("thin");
        w.kv("thin", thin == nullptr || thin->boolean);
        w.kv("shards", num(*doc, "shards"));
        const JsonValue *fluid = doc->find("fluid");
        w.kv("fluid", fluid != nullptr && fluid->boolean);
        const JsonValue *fmode = doc->find("fluid_mode");
        if (fmode != nullptr && fmode->isString())
            w.kv("fluid_mode", fmode->str);
        w.kv("cases",
             double(cases != nullptr ? cases->items.size() : 0));
        if (total != nullptr) {
            w.kv("events", num(*total, "events"));
            w.kv("host_wall_s", num(*total, "host_wall_s"));
            w.kv("events_per_sec", num(*total, "events_per_sec"));
            // Simulation cost per unit workload: if thinning (or fluid
            // warping) is silently disabled, events/packet balloons even
            // when events/s looks healthy — perf_compare gates on it.
            if (num(*total, "packets") > 0) {
                w.kv("packets", num(*total, "packets"));
                w.kv("events_per_packet",
                     num(*total, "events_per_packet"));
            }
            grand_events += num(*total, "events");
            grand_wall += num(*total, "host_wall_s");
        }
        // Warp effectiveness rides into the summary so perf_compare's
        // --min-warp-frac gate can catch fluid warping silently
        // degrading (probes forever rejected -> the bench still
        // finishes, just 60x slower). Summed over the cases; the
        // fraction is warped simulated time over simulated time.
        double segments = 0, periods = 0, warped = 0, elided = 0;
        double sim_s = 0;
        bool any_fluid = false;
        if (cases != nullptr) {
            for (const JsonValue &c : cases->items) {
                sim_s += num(c, "sim_s");
                const JsonValue *fs = c.find("fluid_stats");
                if (fs == nullptr)
                    continue;
                any_fluid = true;
                segments += num(*fs, "segments");
                periods += num(*fs, "periods_warped");
                warped += num(*fs, "warped_sim_s");
                elided += num(*fs, "events_elided");
            }
        }
        if (any_fluid) {
            w.key("fluid_stats").beginObject();
            w.kv("segments", segments);
            w.kv("periods_warped", periods);
            w.kv("warped_sim_s", warped);
            if (sim_s > 0)
                w.kv("warp_frac", warped / sim_s);
            w.kv("events_elided", elided);
            w.endObject();
        }
        w.endObject();
        ++benches;
    }
    w.endArray();
    w.key("total").beginObject();
    w.kv("benches", double(benches));
    w.kv("events", grand_events);
    w.kv("host_wall_s", grand_wall);
    w.kv("events_per_sec",
         grand_wall > 0 ? grand_events / grand_wall : 0.0);
    w.endObject();
    w.endObject();

    if (!sriov::obs::writeTextFile(out_path, w.str())) {
        std::fprintf(stderr, "bench_summary: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    std::printf("bench_summary: %s: %zu perf sidecars, %.0f events in "
                "%.2fs host time (%.2f M events/s)\n",
                out_path.c_str(), benches, grand_events, grand_wall,
                grand_wall > 0 ? grand_events / grand_wall / 1e6 : 0.0);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool perf_mode = false;
    std::vector<const char *> pos;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--perf") == 0)
            perf_mode = true;
        else
            pos.push_back(argv[i]);
    }
    if (pos.empty()) {
        std::fprintf(stderr,
                     "usage: bench_summary [--perf] <dir> [out.json]\n");
        return 2;
    }
    std::string dir = pos[0];
    std::string out_path =
        pos.size() > 1 ? pos[1]
                       : (perf_mode ? "BENCH_perf.json"
                                    : "BENCH_summary.json");

    std::vector<std::string> files;
    std::error_code ec;
    for (const auto &ent :
         std::filesystem::directory_iterator(dir, ec)) {
        const auto &p = ent.path();
        if (p.extension() != ".json"
            || p.string().find(".trace.") != std::string::npos
            || p.string().find(".pathtrace.") != std::string::npos
            || p.string().find(".flightrec.") != std::string::npos)
            continue;
        bool is_perf =
            p.string().find(".perf.") != std::string::npos;
        if (is_perf == perf_mode)
            files.push_back(p.string());
    }
    if (ec || files.empty()) {
        std::fprintf(stderr, "bench_summary: no %s in %s\n",
                     perf_mode ? "perf sidecars" : "reports",
                     dir.c_str());
        return 1;
    }
    std::sort(files.begin(), files.end());

    if (perf_mode)
        return summarizePerf(files, out_path);

    JsonWriter w;
    w.beginObject();
    w.kv("schema", "sriov-bench-summary/v1");
    w.key("benches").beginArray();
    std::size_t total = 0, passed = 0, figures = 0, figures_ok = 0;
    for (const std::string &path : files) {
        auto doc = loadJson(path);
        if (!doc)
            return 1;
        const JsonValue *schema = doc->find("schema");
        if (schema == nullptr
            || schema->str != sriov::obs::Report::kSchema) {
            std::fprintf(stderr, "bench_summary: %s: not a bench report\n",
                         path.c_str());
            continue;
        }
        ++figures;
        const JsonValue *bench = doc->find("bench");
        const JsonValue *all = doc->find("all_pass");
        const JsonValue *exps = doc->find("expectations");
        bool fig_ok = all != nullptr && all->boolean;
        w.beginObject();
        w.kv("bench", bench != nullptr ? bench->str : path);
        w.kv("all_pass", fig_ok);
        w.key("expectations").beginArray();
        if (exps != nullptr) {
            for (const JsonValue &e : exps->items) {
                ++total;
                const JsonValue *pass = e.find("pass");
                const JsonValue *name = e.find("name");
                if (pass != nullptr && pass->boolean)
                    ++passed;
                w.beginObject();
                w.kv("name", name != nullptr ? name->str : "");
                w.kv("actual", num(e, "actual"));
                w.kv("expected", num(e, "expected"));
                w.kv("delta_pct", num(e, "delta_pct"));
                w.kv("pass", pass != nullptr && pass->boolean);
                w.endObject();
            }
        }
        w.endArray();
        // Stage-latency attribution rides along so the trajectory file
        // shows where each figure's packet time goes, not just whether
        // the totals land in band.
        if (const JsonValue *ps = doc->find("path_stages");
            ps != nullptr && ps->isArray() && !ps->items.empty()) {
            w.key("path_stages").beginArray();
            for (const JsonValue &b : ps->items) {
                const JsonValue *label = b.find("label");
                const JsonValue *tot = b.find("total");
                w.beginObject();
                w.kv("label", label != nullptr ? label->str : "");
                if (tot != nullptr) {
                    w.kv("trails", num(*tot, "count"));
                    w.kv("total_p50_us", num(*tot, "p50_us"));
                    w.kv("total_p99_us", num(*tot, "p99_us"));
                }
                w.key("stages").beginArray();
                if (const JsonValue *stages = b.find("stages");
                    stages != nullptr) {
                    for (const JsonValue &s : stages->items) {
                        const JsonValue *sn = s.find("stage");
                        w.beginObject();
                        w.kv("stage", sn != nullptr ? sn->str : "");
                        w.kv("p50_us", num(s, "p50_us"));
                        w.kv("p99_us", num(s, "p99_us"));
                        w.kv("share_pct", num(s, "share_pct"));
                        w.endObject();
                    }
                }
                w.endArray();
                w.endObject();
            }
            w.endArray();
        }
        w.endObject();
        if (fig_ok)
            ++figures_ok;
    }
    w.endArray();
    w.kv("figures", std::uint64_t(figures));
    w.kv("figures_pass", std::uint64_t(figures_ok));
    w.kv("expectations", std::uint64_t(total));
    w.kv("expectations_pass", std::uint64_t(passed));
    w.endObject();

    if (!sriov::obs::writeTextFile(out_path, w.str())) {
        std::fprintf(stderr, "bench_summary: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    std::printf("bench_summary: %s: %zu figures (%zu pass), %zu/%zu "
                "expectations in band\n",
                out_path.c_str(), figures, figures_ok, passed,
                total);
    return 0;
}
