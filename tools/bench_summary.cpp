/**
 * @file
 * Merge every bench report in a directory into one machine-readable
 * BENCH_summary.json: per-figure pass/fail plus every expectation's
 * actual/expected/delta. This is the repo-level trajectory file — one
 * line per figure of how close the simulation tracks the paper.
 *
 *   bench_summary <dir-with-figXX.json> [out.json]
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/report.hpp"

using sriov::obs::JsonValue;
using sriov::obs::JsonWriter;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: bench_summary <dir> [out.json]\n");
        return 2;
    }
    std::string dir = argv[1];
    std::string out_path = argc > 2 ? argv[2] : "BENCH_summary.json";

    std::vector<std::string> files;
    std::error_code ec;
    for (const auto &ent :
         std::filesystem::directory_iterator(dir, ec)) {
        const auto &p = ent.path();
        if (p.extension() == ".json"
            && p.string().find(".trace.") == std::string::npos)
            files.push_back(p.string());
    }
    if (ec || files.empty()) {
        std::fprintf(stderr, "bench_summary: no reports in %s\n",
                     dir.c_str());
        return 1;
    }
    std::sort(files.begin(), files.end());

    JsonWriter w;
    w.beginObject();
    w.kv("schema", "sriov-bench-summary/v1");
    w.key("benches").beginArray();
    std::size_t total = 0, passed = 0, figures_ok = 0;
    for (const std::string &path : files) {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        std::string err;
        auto doc = JsonValue::parse(ss.str(), &err);
        if (!doc) {
            std::fprintf(stderr, "bench_summary: %s: %s\n", path.c_str(),
                         err.c_str());
            return 1;
        }
        const JsonValue *schema = doc->find("schema");
        if (schema == nullptr
            || schema->str != sriov::obs::Report::kSchema) {
            std::fprintf(stderr, "bench_summary: %s: not a bench report\n",
                         path.c_str());
            continue;
        }
        const JsonValue *bench = doc->find("bench");
        const JsonValue *all = doc->find("all_pass");
        const JsonValue *exps = doc->find("expectations");
        bool fig_ok = all != nullptr && all->boolean;
        w.beginObject();
        w.kv("bench", bench != nullptr ? bench->str : path);
        w.kv("all_pass", fig_ok);
        w.key("expectations").beginArray();
        if (exps != nullptr) {
            auto num = [](const JsonValue &v, const char *k) {
                const JsonValue *f = v.find(k);
                return f != nullptr ? f->number : 0.0;
            };
            for (const JsonValue &e : exps->items) {
                ++total;
                const JsonValue *pass = e.find("pass");
                const JsonValue *name = e.find("name");
                if (pass != nullptr && pass->boolean)
                    ++passed;
                w.beginObject();
                w.kv("name", name != nullptr ? name->str : "");
                w.kv("actual", num(e, "actual"));
                w.kv("expected", num(e, "expected"));
                w.kv("delta_pct", num(e, "delta_pct"));
                w.kv("pass", pass != nullptr && pass->boolean);
                w.endObject();
            }
        }
        w.endArray();
        w.endObject();
        if (fig_ok)
            ++figures_ok;
    }
    w.endArray();
    w.kv("figures", std::uint64_t(files.size()));
    w.kv("figures_pass", std::uint64_t(figures_ok));
    w.kv("expectations", std::uint64_t(total));
    w.kv("expectations_pass", std::uint64_t(passed));
    w.endObject();

    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "bench_summary: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    out << w.str() << "\n";
    std::printf("bench_summary: %s: %zu figures (%zu pass), %zu/%zu "
                "expectations in band\n",
                out_path.c_str(), files.size(), figures_ok, passed,
                total);
    return 0;
}
