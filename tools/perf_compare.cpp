/**
 * @file
 * Compare a freshly measured BENCH_perf.json against the committed
 * baseline and fail when the simulator got slower — the perf-regression
 * gate of the CI perf-smoke job.
 *
 *   perf_compare [--min-ratio=<x>] [--out=<comparison.json>]
 *                <baseline.json> <fresh.json>...
 *
 * All inputs follow schema sriov-bench-perf-summary/v1 (the output of
 * bench_summary --perf). Several fresh summaries may be given — one
 * per repetition of the bench suite — and each bench is judged on its
 * *best* (maximum) events-per-second across them: host wall clock only
 * jitters upward, so best-of-N is the low-noise estimator of the true
 * rate. For every bench present on both sides the ratio best/baseline
 * is computed; any bench below the minimum ratio fails the run.
 * Benches present on only one side are reported but never fail —
 * benches come and go across PRs.
 *
 * The minimum ratio defaults to 0.8 (CI hosts jitter; a >20% drop is a
 * real regression) and can be overridden with SRIOV_PERF_MIN_RATIO or
 * --min-ratio=<x>. The per-bench verdicts are also written as a JSON
 * comparison file so CI can archive them as an artifact.
 *
 * Benches that report packets are additionally judged on
 * events-per-packet — a pure simulation metric with no host jitter.
 * Its failure mode is the opposite of a slow runner: if event thinning
 * or fluid warping is silently disabled, a fast machine can keep
 * events/s above the wall-clock gate while the simulator quietly does
 * several times the work per frame. Growth beyond
 * --max-epp-growth (default 1.1x, env SRIOV_PERF_MAX_EPP_GROWTH)
 * fails the run; shrinkage is fine — that is an optimization landing.
 *
 * Fluid-on benches carry a third gate: --min-warp-frac (default 0 =
 * off, env SRIOV_PERF_MIN_WARP_FRAC) is a floor on the fresh
 * summary's fluid_stats.warp_frac — warped simulated seconds over
 * simulated seconds. A warp certificate that stops materialising
 * (every probe rejected) leaves results bit-identical and merely
 * makes the bench 50x slower, which a generous wall-clock ratio on a
 * fast runner can absorb; the fraction gate cannot be fooled that way.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

using sriov::obs::JsonValue;
using sriov::obs::JsonWriter;

namespace {

constexpr const char *kSummarySchema = "sriov-bench-perf-summary/v1";

std::optional<JsonValue>
loadJson(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "perf_compare: cannot open %s\n",
                     path.c_str());
        return std::nullopt;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string err;
    auto doc = JsonValue::parseTolerant(ss.str(), &err);
    if (!doc)
        std::fprintf(stderr, "perf_compare: %s: %s\n", path.c_str(),
                     err.c_str());
    return doc;
}

double
num(const JsonValue &v, const char *k)
{
    const JsonValue *f = v.find(k);
    return f != nullptr ? f->number : 0.0;
}

struct BenchRate
{
    std::string name;
    double events_per_sec = 0.0;
    /** Simulation cost per unit workload (0 when the bench does not
     *  report packets). Unlike events/s this is a *simulation* metric
     *  with no host jitter, so it is gated tightly: if thinning or
     *  fluid warping is silently disabled, events/packet balloons even
     *  when a fast runner keeps events/s above the wall-clock gate. */
    double events_per_packet = 0.0;
    /** Simulation mode the rate was measured in. Rates are only
     *  comparable within a mode: a sharded run counts per-island
     *  events and burns multiple host cores, so judging it against a
     *  sequential baseline would be meaningless either way. Summaries
     *  without the keys predate the fields: thinning on, shards 0,
     *  fluid off. */
    bool thin = true;
    unsigned shards = 0;
    bool fluid = false;
    /** Warped simulated time over simulated time, from the summary's
     *  fluid_stats block (0 when absent). The --min-warp-frac gate
     *  judges this on the *fresh* side only: warp effectiveness is a
     *  property of the run, not a ratio against the baseline. */
    double warp_frac = 0.0;
};

/** Extract per-bench events/s from a perf summary; nullopt on error. */
std::optional<std::vector<BenchRate>>
loadRates(const std::string &path)
{
    auto doc = loadJson(path);
    if (!doc)
        return std::nullopt;
    const JsonValue *schema = doc->find("schema");
    if (schema == nullptr || schema->str != kSummarySchema) {
        std::fprintf(stderr, "perf_compare: %s: not a %s document\n",
                     path.c_str(), kSummarySchema);
        return std::nullopt;
    }
    std::vector<BenchRate> rates;
    const JsonValue *benches = doc->find("benches");
    if (benches != nullptr) {
        for (const JsonValue &b : benches->items) {
            const JsonValue *name = b.find("bench");
            BenchRate r;
            r.name = name != nullptr ? name->str : "?";
            r.events_per_sec = num(b, "events_per_sec");
            r.events_per_packet = num(b, "events_per_packet");
            const JsonValue *thin = b.find("thin");
            r.thin = thin == nullptr || thin->boolean;
            r.shards = unsigned(num(b, "shards"));
            const JsonValue *fluid = b.find("fluid");
            r.fluid = fluid != nullptr && fluid->boolean;
            if (const JsonValue *fs = b.find("fluid_stats"))
                r.warp_frac = num(*fs, "warp_frac");
            rates.push_back(std::move(r));
        }
    }
    return rates;
}

const BenchRate *
findRate(const std::vector<BenchRate> &rates, const std::string &name)
{
    for (const BenchRate &r : rates)
        if (r.name == name)
            return &r;
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    double min_ratio = 0.8;
    if (const char *env = std::getenv("SRIOV_PERF_MIN_RATIO"))
        min_ratio = std::atof(env);
    double max_epp_growth = 1.1;
    if (const char *env = std::getenv("SRIOV_PERF_MAX_EPP_GROWTH"))
        max_epp_growth = std::atof(env);
    // Fluid-on warp-effectiveness floor: 0 (the default) disables the
    // gate. When set, every *fresh* fluid-on bench must report a
    // fluid_stats.warp_frac at or above it — the failure mode this
    // catches is warping silently degrading (every probe rejected),
    // which wall-clock gates on a fast runner can miss.
    double min_warp_frac = 0.0;
    if (const char *env = std::getenv("SRIOV_PERF_MIN_WARP_FRAC"))
        min_warp_frac = std::atof(env);

    std::string out_path;
    std::vector<const char *> pos;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--min-ratio=", 12) == 0)
            min_ratio = std::atof(argv[i] + 12);
        else if (std::strncmp(argv[i], "--max-epp-growth=", 17) == 0)
            max_epp_growth = std::atof(argv[i] + 17);
        else if (std::strncmp(argv[i], "--min-warp-frac=", 16) == 0)
            min_warp_frac = std::atof(argv[i] + 16);
        else if (std::strncmp(argv[i], "--out=", 6) == 0)
            out_path = argv[i] + 6;
        else
            pos.push_back(argv[i]);
    }
    if (pos.size() < 2) {
        std::fprintf(stderr,
                     "usage: perf_compare [--min-ratio=<x>] "
                     "[--max-epp-growth=<x>] "
                     "[--min-warp-frac=<x>] "
                     "[--out=<comparison.json>] "
                     "<baseline.json> <fresh.json>...\n");
        return 2;
    }
    if (min_ratio <= 0 || min_ratio > 1.0) {
        std::fprintf(stderr,
                     "perf_compare: min ratio %.3f out of (0, 1]\n",
                     min_ratio);
        return 2;
    }
    if (max_epp_growth < 1.0) {
        std::fprintf(stderr,
                     "perf_compare: max epp growth %.3f below 1\n",
                     max_epp_growth);
        return 2;
    }
    if (min_warp_frac < 0 || min_warp_frac > 1.0) {
        std::fprintf(stderr,
                     "perf_compare: min warp frac %.3f out of [0, 1]\n",
                     min_warp_frac);
        return 2;
    }

    auto baseline = loadRates(pos[0]);
    if (!baseline)
        return 1;

    // Best-of-N: fold every fresh summary into one rate table, keeping
    // each bench's fastest observation.
    std::vector<BenchRate> best;
    std::size_t runs = 0;
    for (std::size_t i = 1; i < pos.size(); ++i) {
        auto fresh_i = loadRates(pos[i]);
        if (!fresh_i)
            return 1;
        ++runs;
        for (const BenchRate &r : *fresh_i) {
            bool merged = false;
            for (BenchRate &have : best) {
                if (have.name == r.name) {
                    if (have.thin != r.thin
                        || have.shards != r.shards
                        || have.fluid != r.fluid) {
                        std::fprintf(stderr,
                                     "perf_compare: %s: fresh runs "
                                     "disagree on mode "
                                     "(thin/shards/fluid) "
                                     "for %s — rerun one suite\n",
                                     pos[i], r.name.c_str());
                        return 2;
                    }
                    have.events_per_sec = std::max(have.events_per_sec,
                                                   r.events_per_sec);
                    // events/packet is deterministic across
                    // repetitions; keep the worst observation so a
                    // flaky run cannot mask growth.
                    have.events_per_packet =
                        std::max(have.events_per_packet,
                                 r.events_per_packet);
                    // Likewise the warp fraction: worst-of-N, so one
                    // healthy repetition cannot hide a degraded one.
                    have.warp_frac =
                        std::min(have.warp_frac, r.warp_frac);
                    merged = true;
                    break;
                }
            }
            if (!merged)
                best.push_back(r);
        }
    }
    std::vector<BenchRate> &fresh = best;

    JsonWriter w;
    w.beginObject();
    w.kv("schema", "sriov-perf-compare/v1");
    w.kv("baseline", std::string(pos[0]));
    w.kv("fresh", std::string(pos[1]));
    w.kv("fresh_runs", std::uint64_t(runs));
    w.kv("min_ratio", min_ratio);
    w.kv("max_epp_growth", max_epp_growth);
    w.key("benches").beginArray();

    std::size_t compared = 0, failed = 0;
    for (const BenchRate &base : *baseline) {
        const BenchRate *now = findRate(fresh, base.name);
        w.beginObject();
        w.kv("bench", base.name);
        w.kv("baseline_events_per_sec", base.events_per_sec);
        if (now == nullptr) {
            w.kv("status", "missing");
            std::printf("perf_compare: %-16s missing from fresh run "
                        "(informational)\n",
                        base.name.c_str());
        } else if (base.thin != now->thin || base.shards != now->shards
                   || base.fluid != now->fluid) {
            // Never judge across simulation modes: a sharded run counts
            // per-island events on multiple host cores, a thinned run
            // coalesces deliveries, and a fluid run elides whole
            // steady-state stretches, so the events/s scales are not
            // commensurable with a differently-configured baseline.
            w.kv("fresh_events_per_sec", now->events_per_sec);
            w.kv("baseline_thin", base.thin);
            w.kv("baseline_shards", std::uint64_t(base.shards));
            w.kv("baseline_fluid", base.fluid);
            w.kv("fresh_thin", now->thin);
            w.kv("fresh_shards", std::uint64_t(now->shards));
            w.kv("fresh_fluid", now->fluid);
            w.kv("status", "mode-mismatch");
            std::printf("perf_compare: %-16s MODE MISMATCH "
                        "(baseline thin=%d shards=%u fluid=%d, fresh "
                        "thin=%d shards=%u fluid=%d) — not compared\n",
                        base.name.c_str(), int(base.thin), base.shards,
                        int(base.fluid), int(now->thin), now->shards,
                        int(now->fluid));
        } else if (base.events_per_sec <= 0) {
            w.kv("status", "no-baseline-rate");
        } else {
            double ratio = now->events_per_sec / base.events_per_sec;
            bool ok = ratio >= min_ratio;
            ++compared;
            w.kv("fresh_events_per_sec", now->events_per_sec);
            w.kv("ratio", ratio);
            // Events-per-packet gate: only when both sides report
            // packets (benches without packet counts skip it).
            bool epp_ok = true;
            double epp_ratio = 0;
            if (base.events_per_packet > 0
                && now->events_per_packet > 0) {
                epp_ratio =
                    now->events_per_packet / base.events_per_packet;
                epp_ok = epp_ratio <= max_epp_growth;
                w.kv("baseline_events_per_packet",
                     base.events_per_packet);
                w.kv("fresh_events_per_packet",
                     now->events_per_packet);
                w.kv("epp_ratio", epp_ratio);
            }
            if (!ok || !epp_ok)
                ++failed;
            w.kv("status", ok && epp_ok ? "ok" : "regressed");
            std::printf("perf_compare: %-16s %8.2f -> %8.2f M events/s "
                        "(%.2fx) %s",
                        base.name.c_str(), base.events_per_sec / 1e6,
                        now->events_per_sec / 1e6, ratio,
                        ok ? "ok" : "REGRESSED");
            if (epp_ratio > 0)
                std::printf(", %6.1f -> %6.1f ev/pkt (%.2fx) %s",
                            base.events_per_packet,
                            now->events_per_packet, epp_ratio,
                            epp_ok ? "ok" : "THINNING REGRESSED");
            std::printf("\n");
        }
        w.endObject();
    }
    for (const BenchRate &now : fresh) {
        if (findRate(*baseline, now.name) != nullptr)
            continue;
        w.beginObject();
        w.kv("bench", now.name);
        w.kv("fresh_events_per_sec", now.events_per_sec);
        w.kv("status", "new");
        w.endObject();
        std::printf("perf_compare: %-16s new bench at %.2f M events/s "
                    "(no baseline)\n",
                    now.name.c_str(), now.events_per_sec / 1e6);
    }
    w.endArray();

    // Warp-effectiveness floor: judged on the fresh side alone (no
    // baseline ratio — a fluid-on bench either warps most of its
    // steady horizon or the accelerator is broken), so new benches
    // and mode-mismatched ones are gated too.
    w.key("warp_gate").beginArray();
    if (min_warp_frac > 0) {
        for (const BenchRate &now : fresh) {
            if (!now.fluid)
                continue;
            bool ok = now.warp_frac >= min_warp_frac;
            w.beginObject();
            w.kv("bench", now.name);
            w.kv("warp_frac", now.warp_frac);
            w.kv("min_warp_frac", min_warp_frac);
            w.kv("status", ok ? "ok" : "degraded");
            w.endObject();
            std::printf("perf_compare: %-16s warp frac %.3f (floor "
                        "%.3f) %s\n",
                        now.name.c_str(), now.warp_frac, min_warp_frac,
                        ok ? "ok" : "WARP DEGRADED");
            if (!ok)
                ++failed;
            ++compared;
        }
    }
    w.endArray();
    w.kv("compared", std::uint64_t(compared));
    w.kv("regressed", std::uint64_t(failed));
    w.endObject();

    if (!out_path.empty()
        && !sriov::obs::writeTextFile(out_path, w.str())) {
        std::fprintf(stderr, "perf_compare: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }

    if (failed != 0) {
        std::fprintf(stderr,
                     "perf_compare: FAIL: %zu of %zu checks regressed "
                     "(events/s below %.2fx of the committed baseline, "
                     "events/packet above %.2fx of it, or warp "
                     "fraction below the %.2f floor)\n",
                     failed, compared, min_ratio, max_epp_growth,
                     min_warp_frac);
        return 1;
    }
    std::printf("perf_compare: %zu checks at or above the committed "
                "baseline (min ratio %.2f)\n",
                compared, min_ratio);
    return 0;
}
