/**
 * @file
 * Schema validator for the artifacts the observability layer emits:
 *
 *   report_check report <figXX.json> [...]     validate bench reports
 *   report_check trace  <x.trace.json> [...]   validate Chrome traces
 *   report_check perf   <x.perf.json> [...]    validate perf sidecars
 *   report_check pathtrace <x.pathtrace.json> [...]
 *                          validate packet-path trace/flightrec dumps
 *                          (span schema: trails anchored at origin,
 *                          monotone hop timestamps, known stage names,
 *                          base-sampling fraction within bounds)
 *   report_check fluid-equiv [--banded] [--band=<rel>] <ref> <fluid>
 *                          enforce the fluid equivalence contract
 *                          (DESIGN.md §14) between two figXX.json
 *                          runs: strict (default, --fluid=exact vs
 *                          --fluid=on — integer leaves byte-identical,
 *                          fp leaves within 1e-9) or --banded
 *                          (--fluid=off vs --fluid=on — workload
 *                          metrics within tolerance bands)
 *
 * Exit code 0 when every file parses, carries the required fields and
 * (for reports) every expectation is within its band; 1 otherwise.
 * CI runs this over bench/out/ so a drifting simulation or a malformed
 * writer fails the build rather than producing quietly-wrong JSON.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "check/fluid_equiv.hpp"
#include "obs/json.hpp"
#include "obs/pathtrace.hpp"
#include "obs/report.hpp"

using sriov::obs::JsonValue;

namespace {

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
fail(const std::string &path, const std::string &why)
{
    std::fprintf(stderr, "report_check: %s: %s\n", path.c_str(),
                 why.c_str());
    return false;
}

/** Shared by report path_stages blocks and pathtrace case stages:
 *  known names, causal enum order, sane numeric fields. */
bool
checkStagesArray(const std::string &path, const JsonValue &stages)
{
    int last_stage = -1;
    double share_sum = 0;
    for (const JsonValue &s : stages.items) {
        const JsonValue *name = s.find("stage");
        if (name == nullptr || !name->isString())
            return fail(path, "stage entry without name");
        auto st = sriov::obs::pathStageFromName(name->str);
        if (st == sriov::obs::PathStage::Count)
            return fail(path, "unknown stage '" + name->str + "'");
        if (int(st) <= last_stage)
            return fail(path, "stages out of causal order at '"
                                  + name->str + "'");
        last_stage = int(st);
        for (const char *k :
             {"count", "mean_us", "p50_us", "p99_us", "share_pct"}) {
            const JsonValue *v = s.find(k);
            if (v == nullptr || !v->isNumber() || v->number < 0)
                return fail(path, "stage '" + name->str
                                      + "' missing/negative '" + k + "'");
        }
        share_sum += s.find("share_pct")->number;
    }
    // Stage deltas telescope to the total, so shares sum to <= 100%
    // (short of 100 only when trails skip their final stages).
    if (share_sum > 100.5)
        return fail(path, "stage shares sum to "
                              + std::to_string(share_sum) + "% (> 100)");
    return true;
}

/** The optional path_stages block a report carries per case. */
bool
checkReportPathStages(const std::string &path, const JsonValue &blocks)
{
    if (!blocks.isArray())
        return fail(path, "path_stages is not an array");
    for (const JsonValue &b : blocks.items) {
        const JsonValue *label = b.find("label");
        if (label == nullptr || !label->isString())
            return fail(path, "path_stages entry without label");
        const JsonValue *stages = b.find("stages");
        if (stages == nullptr || !stages->isArray()
            || stages->items.empty())
            return fail(path, "path_stages '" + label->str
                                  + "' without stages");
        if (!checkStagesArray(path, *stages))
            return false;
        const JsonValue *total = b.find("total");
        if (total == nullptr || !total->isObject())
            return fail(path, "path_stages '" + label->str
                                  + "' without total");
        const JsonValue *count = total->find("count");
        if (count == nullptr || !count->isNumber() || count->number <= 0)
            return fail(path, "path_stages '" + label->str
                                  + "' total.count not positive");
    }
    return true;
}

bool
checkReport(const std::string &path)
{
    std::string text, err;
    if (!readFile(path, text))
        return fail(path, "cannot read");
    auto doc = JsonValue::parseTolerant(text, &err);
    if (!doc)
        return fail(path, "malformed JSON: " + err);

    const JsonValue *schema = doc->find("schema");
    if (schema == nullptr || !schema->isString()
        || schema->str != sriov::obs::Report::kSchema)
        return fail(path, "missing/unknown schema (want "
                              + std::string(sriov::obs::Report::kSchema)
                              + ")");
    for (const char *k : {"bench", "title"}) {
        const JsonValue *v = doc->find(k);
        if (v == nullptr || !v->isString() || v->str.empty())
            return fail(path, std::string("missing string field '") + k
                                  + "'");
    }
    const JsonValue *snaps = doc->find("snapshots");
    if (snaps == nullptr || !snaps->isArray())
        return fail(path, "missing snapshots array");
    std::size_t metrics = 0;
    for (const JsonValue &s : snaps->items) {
        const JsonValue *label = s.find("label");
        const JsonValue *m = s.find("metrics");
        if (label == nullptr || !label->isString() || m == nullptr
            || !m->isObject())
            return fail(path, "snapshot without label/metrics");
        metrics += m->members.size();
    }
    if (metrics == 0)
        return fail(path, "no metric samples in any snapshot");

    const JsonValue *exps = doc->find("expectations");
    if (exps == nullptr || !exps->isArray() || exps->items.empty())
        return fail(path, "no paper expectations recorded");
    std::size_t failed = 0;
    for (const JsonValue &e : exps->items) {
        for (const char *k : {"actual", "expected", "band_pct", "delta",
                              "delta_pct"}) {
            const JsonValue *v = e.find(k);
            if (v == nullptr || !v->isNumber())
                return fail(path, std::string("expectation missing '") + k
                                      + "'");
        }
        const JsonValue *name = e.find("name");
        const JsonValue *pass = e.find("pass");
        if (name == nullptr || !name->isString() || pass == nullptr
            || !pass->isBool())
            return fail(path, "expectation missing name/pass");
        if (!pass->boolean) {
            std::fprintf(stderr,
                         "report_check: %s: OUT OF BAND %s: actual %g vs "
                         "expected %g (+-%g%%)\n",
                         path.c_str(), name->str.c_str(),
                         e.find("actual")->number,
                         e.find("expected")->number,
                         e.find("band_pct")->number);
            ++failed;
        }
    }
    const JsonValue *all = doc->find("all_pass");
    if (all == nullptr || !all->isBool()
        || all->boolean != (failed == 0))
        return fail(path, "all_pass missing or inconsistent");
    if (const JsonValue *ps = doc->find("path_stages"); ps != nullptr) {
        if (!checkReportPathStages(path, *ps))
            return false;
    }
    if (failed != 0)
        return fail(path,
                    std::to_string(failed) + " expectation(s) out of band");
    std::printf("report_check: %s: OK (%zu snapshots, %zu expectations)\n",
                path.c_str(), snaps->items.size(), exps->items.size());
    return true;
}

bool
checkTrace(const std::string &path)
{
    std::string text, err;
    if (!readFile(path, text))
        return fail(path, "cannot read");
    auto doc = JsonValue::parseTolerant(text, &err);
    if (!doc)
        return fail(path, "malformed JSON: " + err);

    const JsonValue *events = doc->find("traceEvents");
    if (events == nullptr || !events->isArray() || events->items.empty())
        return fail(path, "missing/empty traceEvents");
    std::set<std::pair<double, double>> tracks;
    std::size_t spans = 0;
    for (const JsonValue &e : events->items) {
        const JsonValue *ph = e.find("ph");
        const JsonValue *pid = e.find("pid");
        const JsonValue *tid = e.find("tid");
        if (ph == nullptr || !ph->isString() || pid == nullptr
            || !pid->isNumber() || tid == nullptr || !tid->isNumber())
            return fail(path, "event missing ph/pid/tid");
        if (ph->str == "M")
            continue;
        tracks.insert({pid->number, tid->number});
        if (ph->str == "X") {
            ++spans;
            const JsonValue *dur = e.find("dur");
            const JsonValue *ts = e.find("ts");
            if (dur == nullptr || !dur->isNumber() || dur->number < 0
                || ts == nullptr || !ts->isNumber())
                return fail(path, "complete event missing ts/dur");
        }
    }
    if (tracks.size() < 2)
        return fail(path, "fewer than 2 tracks ("
                              + std::to_string(tracks.size()) + ")");
    // Capacity drops: the total and the per-track breakdown must agree
    // (a writer that forgets one of the two hides truncation).
    const JsonValue *dropped = doc->find("sriovDroppedEvents");
    const JsonValue *by_track = doc->find("sriovDroppedByTrack");
    if (dropped != nullptr || by_track != nullptr) {
        if (dropped == nullptr || !dropped->isNumber()
            || by_track == nullptr || !by_track->isArray()
            || by_track->items.empty())
            return fail(path, "sriovDroppedEvents/sriovDroppedByTrack "
                              "must appear together");
        double sum = 0;
        for (const JsonValue &d : by_track->items) {
            for (const char *k : {"pid", "tid", "dropped"}) {
                const JsonValue *v = d.find(k);
                if (v == nullptr || !v->isNumber())
                    return fail(path,
                                std::string("drop entry missing '") + k
                                    + "'");
            }
            sum += d.find("dropped")->number;
        }
        if (sum != dropped->number)
            return fail(path, "per-track drops sum "
                                  + std::to_string(sum)
                                  + " != sriovDroppedEvents "
                                  + std::to_string(dropped->number));
        std::fprintf(stderr,
                     "report_check: %s: note: %g event(s) dropped at "
                     "capacity across %zu track(s)\n",
                     path.c_str(), dropped->number,
                     by_track->items.size());
    }
    std::printf("report_check: %s: OK (%zu events, %zu spans, %zu "
                "tracks)\n",
                path.c_str(), events->items.size(), spans, tracks.size());
    return true;
}

bool
checkPathTrace(const std::string &path)
{
    std::string text, err;
    if (!readFile(path, text))
        return fail(path, "cannot read");
    auto doc = JsonValue::parseTolerant(text, &err);
    if (!doc)
        return fail(path, "malformed JSON: " + err);

    const JsonValue *schema = doc->find("schema");
    if (schema == nullptr || !schema->isString()
        || schema->str != "sriov-pathtrace/v1")
        return fail(path,
                    "missing/unknown schema (want sriov-pathtrace/v1)");
    const JsonValue *kind = doc->find("kind");
    if (kind == nullptr || !kind->isString()
        || (kind->str != "trace" && kind->str != "flightrec"))
        return fail(path, "kind must be 'trace' or 'flightrec'");
    const JsonValue *cases = doc->find("cases");
    if (cases == nullptr || !cases->isArray() || cases->items.empty())
        return fail(path, "missing/empty cases array");

    std::size_t trails_total = 0;
    for (const JsonValue &c : cases->items) {
        const JsonValue *label = c.find("label");
        if (label == nullptr || !label->isString())
            return fail(path, "case without label");
        const JsonValue *mode = c.find("mode");
        if (mode == nullptr || !mode->isString()
            || (mode->str != "off" && mode->str != "sampled"
                && mode->str != "full"))
            return fail(path, "case '" + label->str + "': bad mode");
        for (const char *k :
             {"export_mask", "base_mask", "records", "origin_calls",
              "origin_sampled", "completed"}) {
            const JsonValue *v = c.find(k);
            if (v == nullptr || !v->isNumber() || v->number < 0)
                return fail(path, "case '" + label->str
                                      + "': missing counter '" + k + "'");
        }
        // Deterministic-hash base sampling targets 1 in (base_mask+1)
        // ids; with enough origins the realized fraction must sit
        // within a factor of 4 of that (it is a pure hash, not noise).
        const double origins = c.find("origin_calls")->number;
        const double sampled = c.find("origin_sampled")->number;
        const double base = c.find("base_mask")->number + 1;
        if (origins >= 1024) {
            const double frac = sampled / origins;
            if (frac < 1.0 / (base * 4) || frac > 4.0 / base)
                return fail(path,
                            "case '" + label->str + "': sampled fraction "
                                + std::to_string(frac)
                                + " outside [1/(4*base), 4/base]");
        }
        const JsonValue *comps = c.find("components");
        if (comps == nullptr || !comps->isArray() || comps->items.empty())
            return fail(path, "case '" + label->str + "': no components");
        for (const JsonValue &comp : comps->items) {
            const JsonValue *name = comp.find("name");
            if (name == nullptr || !name->isString() || name->str.empty())
                return fail(path, "component without name");
            for (const char *k : {"capacity", "written", "overwritten"}) {
                const JsonValue *v = comp.find(k);
                if (v == nullptr || !v->isNumber() || v->number < 0)
                    return fail(path, "component '" + name->str
                                          + "' missing '" + k + "'");
            }
        }
        const JsonValue *stages = c.find("stages");
        if (stages == nullptr || !stages->isArray())
            return fail(path, "case '" + label->str + "': no stages");
        if (!stages->items.empty()
            && !checkStagesArray(path, *stages))
            return false;
        const JsonValue *trails = c.find("trails");
        if (trails == nullptr || !trails->isArray())
            return fail(path, "case '" + label->str + "': no trails");
        for (const JsonValue &t : trails->items) {
            const JsonValue *id = t.find("id");
            const JsonValue *hops = t.find("hops");
            if (id == nullptr || !id->isString() || hops == nullptr
                || !hops->isArray() || hops->items.empty())
                return fail(path, "trail without id/hops");
            double prev = -1;
            bool first = true;
            for (const JsonValue &h : hops->items) {
                const JsonValue *stage = h.find("stage");
                const JsonValue *comp = h.find("comp");
                const JsonValue *t_ps = h.find("t_ps");
                if (stage == nullptr || !stage->isString()
                    || comp == nullptr || !comp->isString()
                    || t_ps == nullptr || !t_ps->isNumber())
                    return fail(path, "trail " + id->str
                                          + ": hop missing fields");
                if (sriov::obs::pathStageFromName(stage->str)
                    == sriov::obs::PathStage::Count)
                    return fail(path, "trail " + id->str
                                          + ": unknown stage '"
                                          + stage->str + "'");
                if (first && stage->str != "origin")
                    return fail(path, "trail " + id->str
                                          + ": does not start at origin");
                first = false;
                if (t_ps->number < prev)
                    return fail(path,
                                "trail " + id->str
                                    + ": non-monotone hop timestamps");
                prev = t_ps->number;
            }
        }
        trails_total += trails->items.size();
    }
    std::printf("report_check: %s: OK (%s, %zu cases, %zu trails)\n",
                path.c_str(), kind->str.c_str(), cases->items.size(),
                trails_total);
    return true;
}

bool
checkPerf(const std::string &path)
{
    std::string text, err;
    if (!readFile(path, text))
        return fail(path, "cannot read");
    auto doc = JsonValue::parseTolerant(text, &err);
    if (!doc)
        return fail(path, "malformed JSON: " + err);

    const JsonValue *schema = doc->find("schema");
    if (schema == nullptr || !schema->isString()
        || schema->str != "sriov-bench-perf/v1")
        return fail(path,
                    "missing/unknown schema (want sriov-bench-perf/v1)");
    const JsonValue *bench = doc->find("bench");
    if (bench == nullptr || !bench->isString() || bench->str.empty())
        return fail(path, "missing string field 'bench'");
    const JsonValue *jobs = doc->find("jobs");
    if (jobs == nullptr || !jobs->isNumber() || jobs->number < 1)
        return fail(path, "missing/invalid 'jobs'");

    const JsonValue *cases = doc->find("cases");
    if (cases == nullptr || !cases->isArray() || cases->items.empty())
        return fail(path, "missing/empty cases array");
    double sum_events = 0;
    std::size_t fluid_cases = 0;
    for (const JsonValue &c : cases->items) {
        const JsonValue *label = c.find("label");
        if (label == nullptr || !label->isString() || label->str.empty())
            return fail(path, "case without label");
        for (const char *k : {"events", "host_wall_s", "events_per_sec"}) {
            const JsonValue *v = c.find(k);
            if (v == nullptr || !v->isNumber() || v->number < 0)
                return fail(path, std::string("case missing '") + k + "'");
        }
        sum_events += c.find("events")->number;

        // Warp accounting, when present: every counter is a plain
        // non-negative number, every probe either produced a segment
        // or was rejected, and warped simulated time fits inside the
        // simulated window the case actually covered.
        const JsonValue *fs = c.find("fluid_stats");
        if (fs == nullptr)
            continue;
        ++fluid_cases;
        for (const char *k : {"segments", "probes", "rejected",
                              "periods_warped", "warped_sim_s",
                              "events_elided"}) {
            const JsonValue *v = fs->find(k);
            if (v == nullptr || !v->isNumber() || v->number < 0)
                return fail(path, std::string("fluid_stats missing '")
                                      + k + "' in case "
                                      + label->str);
        }
        double segments = fs->find("segments")->number;
        double probes = fs->find("probes")->number;
        double rejected = fs->find("rejected")->number;
        double warped = fs->find("warped_sim_s")->number;
        if (segments + rejected > probes)
            return fail(path, "fluid_stats: segments + rejected > "
                              "probes in case " + label->str);
        if (segments > 0
            && fs->find("periods_warped")->number < segments)
            return fail(path, "fluid_stats: fewer warped periods than "
                              "segments in case " + label->str);
        const JsonValue *sim_s = c.find("sim_s");
        if (sim_s != nullptr && sim_s->isNumber()
            && warped > sim_s->number * (1 + 1e-9))
            return fail(path, "fluid_stats: warped_sim_s exceeds the "
                              "simulated window in case " + label->str);
        const JsonValue *frac = fs->find("warp_frac");
        if (frac != nullptr
            && (!frac->isNumber() || frac->number < 0
                || frac->number > 1 + 1e-9))
            return fail(path, "fluid_stats: warp_frac outside [0, 1] "
                              "in case " + label->str);
    }
    const JsonValue *total = doc->find("total");
    if (total == nullptr || !total->isObject())
        return fail(path, "missing total object");
    const JsonValue *tev = total->find("events");
    if (tev == nullptr || !tev->isNumber()
        || tev->number != sum_events)
        return fail(path, "total.events inconsistent with case sum");
    std::printf("report_check: %s: OK (%zu cases, %.0f events, %zu "
                "with warp stats)\n",
                path.c_str(), cases->items.size(), sum_events,
                fluid_cases);
    return true;
}

/** `report_check fluid-equiv [--banded] [--band=<rel>] <ref> <fluid>` */
int
checkFluidEquiv(int argc, char **argv)
{
    sriov::check::FluidEquivOptions opt;
    std::string ref_path, fluid_path;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--banded") {
            opt.banded = true;
        } else if (arg.rfind("--band=", 0) == 0) {
            opt.band = std::atof(arg.c_str() + 7);
        } else if (ref_path.empty()) {
            ref_path = arg;
        } else if (fluid_path.empty()) {
            fluid_path = arg;
        } else {
            std::fprintf(stderr, "fluid-equiv: unexpected arg '%s'\n",
                         arg.c_str());
            return 2;
        }
    }
    if (ref_path.empty() || fluid_path.empty()) {
        std::fprintf(stderr, "usage: report_check fluid-equiv "
                             "[--banded] [--band=<rel>] <ref.json> "
                             "<fluid.json>\n");
        return 2;
    }
    std::string text, err;
    if (!readFile(ref_path, text))
        return fail(ref_path, "cannot read"), 1;
    auto ref = JsonValue::parseTolerant(text, &err);
    if (!ref)
        return fail(ref_path, "malformed JSON: " + err), 1;
    if (!readFile(fluid_path, text))
        return fail(fluid_path, "cannot read"), 1;
    auto fluid = JsonValue::parseTolerant(text, &err);
    if (!fluid)
        return fail(fluid_path, "malformed JSON: " + err), 1;

    auto res = sriov::check::compareFluidReports(*ref, *fluid, opt);
    for (const std::string &v : res.violations)
        std::fprintf(stderr, "fluid-equiv: VIOLATION %s\n", v.c_str());
    if (!res.ok()) {
        std::fprintf(stderr,
                     "fluid-equiv: %s vs %s: %zu violation(s) over %zu "
                     "leaves (%s contract)\n",
                     ref_path.c_str(), fluid_path.c_str(),
                     res.violations.size(), res.compared,
                     opt.banded ? "banded" : "strict");
        return 1;
    }
    std::printf("fluid-equiv: %s vs %s: OK (%zu leaves, %zu "
                "byte-identical, %zu diagnostic skipped, %s contract)\n",
                ref_path.c_str(), fluid_path.c_str(), res.compared,
                res.exact, res.skipped,
                opt.banded ? "banded" : "strict");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string mode = argc >= 2 ? argv[1] : "";
    if (mode == "fluid-equiv")
        return checkFluidEquiv(argc, argv);
    if (argc < 3
        || (mode != "report" && mode != "trace" && mode != "perf"
            && mode != "pathtrace")) {
        std::fprintf(
            stderr,
            "usage: report_check report <figXX.json> [...]\n"
            "       report_check trace <x.trace.json> [...]\n"
            "       report_check perf <x.perf.json> [...]\n"
            "       report_check pathtrace <x.pathtrace.json> [...]\n"
            "       report_check fluid-equiv [--banded] [--band=<rel>] "
            "<ref.json> <fluid.json>\n");
        return 2;
    }
    bool ok = true;
    for (int i = 2; i < argc; ++i) {
        bool one = mode == "trace" ? checkTrace(argv[i])
                   : mode == "perf" ? checkPerf(argv[i])
                   : mode == "pathtrace" ? checkPathTrace(argv[i])
                                         : checkReport(argv[i]);
        ok = one && ok;
    }
    return ok ? 0 : 1;
}
