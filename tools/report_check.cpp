/**
 * @file
 * Schema validator for the artifacts the observability layer emits:
 *
 *   report_check report <figXX.json> [...]     validate bench reports
 *   report_check trace  <x.trace.json> [...]   validate Chrome traces
 *   report_check perf   <x.perf.json> [...]    validate perf sidecars
 *
 * Exit code 0 when every file parses, carries the required fields and
 * (for reports) every expectation is within its band; 1 otherwise.
 * CI runs this over bench/out/ so a drifting simulation or a malformed
 * writer fails the build rather than producing quietly-wrong JSON.
 */

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/report.hpp"

using sriov::obs::JsonValue;

namespace {

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
fail(const std::string &path, const std::string &why)
{
    std::fprintf(stderr, "report_check: %s: %s\n", path.c_str(),
                 why.c_str());
    return false;
}

bool
checkReport(const std::string &path)
{
    std::string text, err;
    if (!readFile(path, text))
        return fail(path, "cannot read");
    auto doc = JsonValue::parseTolerant(text, &err);
    if (!doc)
        return fail(path, "malformed JSON: " + err);

    const JsonValue *schema = doc->find("schema");
    if (schema == nullptr || !schema->isString()
        || schema->str != sriov::obs::Report::kSchema)
        return fail(path, "missing/unknown schema (want "
                              + std::string(sriov::obs::Report::kSchema)
                              + ")");
    for (const char *k : {"bench", "title"}) {
        const JsonValue *v = doc->find(k);
        if (v == nullptr || !v->isString() || v->str.empty())
            return fail(path, std::string("missing string field '") + k
                                  + "'");
    }
    const JsonValue *snaps = doc->find("snapshots");
    if (snaps == nullptr || !snaps->isArray())
        return fail(path, "missing snapshots array");
    std::size_t metrics = 0;
    for (const JsonValue &s : snaps->items) {
        const JsonValue *label = s.find("label");
        const JsonValue *m = s.find("metrics");
        if (label == nullptr || !label->isString() || m == nullptr
            || !m->isObject())
            return fail(path, "snapshot without label/metrics");
        metrics += m->members.size();
    }
    if (metrics == 0)
        return fail(path, "no metric samples in any snapshot");

    const JsonValue *exps = doc->find("expectations");
    if (exps == nullptr || !exps->isArray() || exps->items.empty())
        return fail(path, "no paper expectations recorded");
    std::size_t failed = 0;
    for (const JsonValue &e : exps->items) {
        for (const char *k : {"actual", "expected", "band_pct", "delta",
                              "delta_pct"}) {
            const JsonValue *v = e.find(k);
            if (v == nullptr || !v->isNumber())
                return fail(path, std::string("expectation missing '") + k
                                      + "'");
        }
        const JsonValue *name = e.find("name");
        const JsonValue *pass = e.find("pass");
        if (name == nullptr || !name->isString() || pass == nullptr
            || !pass->isBool())
            return fail(path, "expectation missing name/pass");
        if (!pass->boolean) {
            std::fprintf(stderr,
                         "report_check: %s: OUT OF BAND %s: actual %g vs "
                         "expected %g (+-%g%%)\n",
                         path.c_str(), name->str.c_str(),
                         e.find("actual")->number,
                         e.find("expected")->number,
                         e.find("band_pct")->number);
            ++failed;
        }
    }
    const JsonValue *all = doc->find("all_pass");
    if (all == nullptr || !all->isBool()
        || all->boolean != (failed == 0))
        return fail(path, "all_pass missing or inconsistent");
    if (failed != 0)
        return fail(path,
                    std::to_string(failed) + " expectation(s) out of band");
    std::printf("report_check: %s: OK (%zu snapshots, %zu expectations)\n",
                path.c_str(), snaps->items.size(), exps->items.size());
    return true;
}

bool
checkTrace(const std::string &path)
{
    std::string text, err;
    if (!readFile(path, text))
        return fail(path, "cannot read");
    auto doc = JsonValue::parseTolerant(text, &err);
    if (!doc)
        return fail(path, "malformed JSON: " + err);

    const JsonValue *events = doc->find("traceEvents");
    if (events == nullptr || !events->isArray() || events->items.empty())
        return fail(path, "missing/empty traceEvents");
    std::set<std::pair<double, double>> tracks;
    std::size_t spans = 0;
    for (const JsonValue &e : events->items) {
        const JsonValue *ph = e.find("ph");
        const JsonValue *pid = e.find("pid");
        const JsonValue *tid = e.find("tid");
        if (ph == nullptr || !ph->isString() || pid == nullptr
            || !pid->isNumber() || tid == nullptr || !tid->isNumber())
            return fail(path, "event missing ph/pid/tid");
        if (ph->str == "M")
            continue;
        tracks.insert({pid->number, tid->number});
        if (ph->str == "X") {
            ++spans;
            const JsonValue *dur = e.find("dur");
            const JsonValue *ts = e.find("ts");
            if (dur == nullptr || !dur->isNumber() || dur->number < 0
                || ts == nullptr || !ts->isNumber())
                return fail(path, "complete event missing ts/dur");
        }
    }
    if (tracks.size() < 2)
        return fail(path, "fewer than 2 tracks ("
                              + std::to_string(tracks.size()) + ")");
    std::printf("report_check: %s: OK (%zu events, %zu spans, %zu "
                "tracks)\n",
                path.c_str(), events->items.size(), spans, tracks.size());
    return true;
}

bool
checkPerf(const std::string &path)
{
    std::string text, err;
    if (!readFile(path, text))
        return fail(path, "cannot read");
    auto doc = JsonValue::parseTolerant(text, &err);
    if (!doc)
        return fail(path, "malformed JSON: " + err);

    const JsonValue *schema = doc->find("schema");
    if (schema == nullptr || !schema->isString()
        || schema->str != "sriov-bench-perf/v1")
        return fail(path,
                    "missing/unknown schema (want sriov-bench-perf/v1)");
    const JsonValue *bench = doc->find("bench");
    if (bench == nullptr || !bench->isString() || bench->str.empty())
        return fail(path, "missing string field 'bench'");
    const JsonValue *jobs = doc->find("jobs");
    if (jobs == nullptr || !jobs->isNumber() || jobs->number < 1)
        return fail(path, "missing/invalid 'jobs'");

    const JsonValue *cases = doc->find("cases");
    if (cases == nullptr || !cases->isArray() || cases->items.empty())
        return fail(path, "missing/empty cases array");
    double sum_events = 0;
    for (const JsonValue &c : cases->items) {
        const JsonValue *label = c.find("label");
        if (label == nullptr || !label->isString() || label->str.empty())
            return fail(path, "case without label");
        for (const char *k : {"events", "host_wall_s", "events_per_sec"}) {
            const JsonValue *v = c.find(k);
            if (v == nullptr || !v->isNumber() || v->number < 0)
                return fail(path, std::string("case missing '") + k + "'");
        }
        sum_events += c.find("events")->number;
    }
    const JsonValue *total = doc->find("total");
    if (total == nullptr || !total->isObject())
        return fail(path, "missing total object");
    const JsonValue *tev = total->find("events");
    if (tev == nullptr || !tev->isNumber()
        || tev->number != sum_events)
        return fail(path, "total.events inconsistent with case sum");
    std::printf("report_check: %s: OK (%zu cases, %.0f events)\n",
                path.c_str(), cases->items.size(), sum_events);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string mode = argc >= 2 ? argv[1] : "";
    if (argc < 3
        || (mode != "report" && mode != "trace" && mode != "perf")) {
        std::fprintf(stderr,
                     "usage: report_check report <figXX.json> [...]\n"
                     "       report_check trace <x.trace.json> [...]\n"
                     "       report_check perf <x.perf.json> [...]\n");
        return 2;
    }
    bool ok = true;
    for (int i = 2; i < argc; ++i) {
        bool one = mode == "trace"
                       ? checkTrace(argv[i])
                       : mode == "perf" ? checkPerf(argv[i])
                                        : checkReport(argv[i]);
        ok = one && ok;
    }
    return ok ? 0 : 1;
}
